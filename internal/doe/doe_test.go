package doe

import (
	"math"
	"testing"
	"testing/quick"

	"rocc/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSignTable(t *testing.T) {
	st := SignTable(2)
	want := [][]int{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}}
	if len(st) != 4 {
		t.Fatalf("rows %d", len(st))
	}
	for i := range want {
		for j := range want[i] {
			if st[i][j] != want[i][j] {
				t.Fatalf("sign table %v, want %v", st, want)
			}
		}
	}
	// Columns are balanced.
	st3 := SignTable(3)
	for j := 0; j < 3; j++ {
		sum := 0
		for _, row := range st3 {
			sum += row[j]
		}
		if sum != 0 {
			t.Fatalf("unbalanced column %d", j)
		}
	}
}

// Jain's classic 2^2 memory-cache example (Art of Computer Systems
// Performance Analysis §17): responses 15, 45, 25, 75 give effects
// q0=40, qA=20, qB=10, qAB=5 and variation split 76.2% / 19.0% / 4.8%.
func TestAnalyze2KRJainExample(t *testing.T) {
	responses := [][]float64{{15}, {45}, {25}, {75}}
	an, err := Analyze2KR([]string{"memory", "cache"}, responses)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(an.Mean, 40, 1e-12) {
		t.Fatalf("mean %v", an.Mean)
	}
	a, _ := an.EffectByTerm("A")
	b, _ := an.EffectByTerm("B")
	ab, _ := an.EffectByTerm("AB")
	if !almost(a.Estimate, 20, 1e-12) || !almost(b.Estimate, 10, 1e-12) || !almost(ab.Estimate, 5, 1e-12) {
		t.Fatalf("effects %v %v %v", a.Estimate, b.Estimate, ab.Estimate)
	}
	if !almost(a.Fraction, 1600.0/2100, 1e-12) {
		t.Fatalf("A fraction %v", a.Fraction)
	}
	if !almost(b.Fraction, 400.0/2100, 1e-12) || !almost(ab.Fraction, 100.0/2100, 1e-12) {
		t.Fatal("B/AB fractions")
	}
	if an.ErrorFraction != 0 {
		t.Fatal("no replication, error fraction must be 0")
	}
	if !almost(an.FractionSum(), 1, 1e-12) {
		t.Fatalf("fractions sum to %v", an.FractionSum())
	}
	// Sorted descending.
	if an.Effects[0].Term != "A" || an.Effects[2].Term != "AB" {
		t.Fatalf("sort order %v", an.Effects)
	}
}

// Jain §18 adds replications: 2^2 design with r=3. Check SSE handling on
// a constructed example with within-run noise.
func TestAnalyze2KRWithReplications(t *testing.T) {
	responses := [][]float64{
		{14, 16, 15},
		{44, 46, 45},
		{24, 26, 25},
		{74, 76, 75},
	}
	an, err := Analyze2KR([]string{"A", "B"}, responses)
	if err != nil {
		t.Fatal(err)
	}
	// Same means as the Jain example; SSE = 4 runs * (1+0+1) = 8.
	if !almost(an.SSE, 8, 1e-9) {
		t.Fatalf("SSE %v", an.SSE)
	}
	// SS terms now scaled by r=3: SSA = 4*3*400 = 4800.
	a, _ := an.EffectByTerm("A")
	if !almost(a.SS, 4800, 1e-9) {
		t.Fatalf("SSA %v", a.SS)
	}
	if !almost(an.SST, 4800+1200+300+8, 1e-9) {
		t.Fatalf("SST %v", an.SST)
	}
	if !almost(an.FractionSum(), 1, 1e-12) {
		t.Fatal("fractions")
	}
	if an.Replications != 3 {
		t.Fatal("replication count")
	}
}

func TestAnalyze2KRThreeFactors(t *testing.T) {
	// Pure single-factor response: y = 10*C level. Only C explains
	// variation.
	responses := make([][]float64, 8)
	for i := range responses {
		level := -1.0
		if i>>2&1 == 1 {
			level = 1
		}
		responses[i] = []float64{10 * level}
	}
	an, err := Analyze2KR([]string{"A", "B", "C"}, responses)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := an.EffectByTerm("C")
	if !ok || !almost(c.Fraction, 1, 1e-12) {
		t.Fatalf("C should explain all variation: %+v", an.Effects)
	}
	if an.Effects[0].Term != "C" {
		t.Fatal("C should rank first")
	}
	if len(an.Effects) != 7 {
		t.Fatalf("expected 7 terms, got %d", len(an.Effects))
	}
	top := an.TopEffects(3)
	if len(top) != 3 || top[0].Term != "C" {
		t.Fatal("TopEffects")
	}
	if got := an.TopEffects(100); len(got) != 7 {
		t.Fatal("TopEffects clamp")
	}
}

func TestAnalyze2KRErrors(t *testing.T) {
	if _, err := Analyze2KR(nil, nil); err == nil {
		t.Fatal("no factors")
	}
	if _, err := Analyze2KR([]string{"A"}, [][]float64{{1}}); err == nil {
		t.Fatal("wrong row count")
	}
	if _, err := Analyze2KR([]string{"A"}, [][]float64{{1}, {}}); err == nil {
		t.Fatal("empty row")
	}
	if _, err := Analyze2KR([]string{"A"}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows")
	}
	if _, ok := (Analysis{}).EffectByTerm("Z"); ok {
		t.Fatal("missing term should report false")
	}
}

// Property: fractions always sum to 1 (within tolerance) and lie in [0,1].
func TestQuickAllocationFractions(t *testing.T) {
	f := func(seed uint64, kSeed uint8, rSeed uint8) bool {
		k := int(kSeed)%3 + 1
		r := int(rSeed)%4 + 1
		rnd := rng.New(seed)
		rows := 1 << k
		responses := make([][]float64, rows)
		for i := range responses {
			row := make([]float64, r)
			for j := range row {
				row[j] = rnd.Normal(100, 25)
			}
			responses[i] = row
		}
		names := []string{"A", "B", "C", "D"}[:k]
		an, err := Analyze2KR(names, responses)
		if err != nil {
			return false
		}
		if !almost(an.FractionSum(), 1, 1e-9) {
			return false
		}
		for _, e := range an.Effects {
			if e.Fraction < -1e-12 || e.Fraction > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
	// (1,1)/sqrt2 and (1,-1)/sqrt2.
	vals, vecs := JacobiEigen([][]float64{{2, 1}, {1, 2}})
	got := append([]float64(nil), vals...)
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if !almost(got[0], 3, 1e-10) || !almost(got[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Verify A v = lambda v for each column.
	a := [][]float64{{2, 1}, {1, 2}}
	for col := 0; col < 2; col++ {
		for row := 0; row < 2; row++ {
			av := a[row][0]*vecs[0][col] + a[row][1]*vecs[1][col]
			if !almost(av, vals[col]*vecs[row][col], 1e-10) {
				t.Fatalf("A v != lambda v for col %d", col)
			}
		}
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	vals, vecs := JacobiEigen([][]float64{{5, 0, 0}, {0, 2, 0}, {0, 0, 7}})
	want := map[float64]bool{5: true, 2: true, 7: true}
	for _, v := range vals {
		found := false
		for w := range want {
			if almost(v, w, 1e-12) {
				found = true
			}
		}
		if !found {
			t.Fatalf("unexpected eigenvalue %v", v)
		}
	}
	// Eigenvectors of a diagonal matrix are the identity columns.
	for i := range vecs {
		for j := range vecs[i] {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almost(math.Abs(vecs[i][j]), want, 1e-12) {
				t.Fatalf("vecs %v", vecs)
			}
		}
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points along y = 2x with small noise: first component ~ (1,2)/sqrt5.
	r := rng.New(5)
	data := make([][]float64, 500)
	for i := range data {
		x := r.Normal(0, 3)
		data[i] = []float64{x, 2*x + r.Normal(0, 0.1)}
	}
	res, err := PCA(data, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explained[0] < 0.99 {
		t.Fatalf("first component explains only %v", res.Explained[0])
	}
	c := res.Components[0]
	ratio := c[1] / c[0]
	if !almost(ratio, 2, 0.05) {
		t.Fatalf("dominant direction slope %v, want ~2", ratio)
	}
	// Projection of a point on the line has ~zero second score.
	scores := res.Project([]float64{1, 2})
	if math.Abs(scores[1]) > 0.2 {
		t.Fatalf("second score %v", scores[1])
	}
}

func TestPCAStandardized(t *testing.T) {
	// Two variables with wildly different scales but equal correlation
	// structure: standardized PCA weights them equally.
	r := rng.New(6)
	data := make([][]float64, 400)
	for i := range data {
		z := r.Normal(0, 1)
		data[i] = []float64{z * 1e6, z + r.Normal(0, 0.5)}
	}
	res, err := PCA(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scales == nil {
		t.Fatal("scales missing")
	}
	c := res.Components[0]
	if !almost(math.Abs(c[0]), math.Abs(c[1]), 0.1) {
		t.Fatalf("standardized loadings unequal: %v", c)
	}
}

func TestPCAConstantVariable(t *testing.T) {
	data := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	res, err := PCA(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explained[0] < 0.99 {
		t.Fatal("varying variable should dominate")
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := PCA(nil, false); err == nil {
		t.Fatal("empty")
	}
	if _, err := PCA([][]float64{{1}}, false); err == nil {
		t.Fatal("one observation")
	}
	if _, err := PCA([][]float64{{}, {}}, false); err == nil {
		t.Fatal("zero variables")
	}
	if _, err := PCA([][]float64{{1, 2}, {1}}, false); err == nil {
		t.Fatal("ragged")
	}
}

// Property: PCA explained fractions sum to ~1 and are non-increasing.
func TestQuickPCAExplained(t *testing.T) {
	f := func(seed uint64, p8 uint8) bool {
		p := int(p8)%4 + 2
		r := rng.New(seed)
		data := make([][]float64, 30)
		for i := range data {
			row := make([]float64, p)
			for j := range row {
				row[j] = r.Normal(float64(j), float64(j+1))
			}
			data[i] = row
		}
		res, err := PCA(data, false)
		if err != nil {
			return false
		}
		sum := 0.0
		for i, e := range res.Explained {
			sum += e
			if i > 0 && e > res.Explained[i-1]+1e-12 {
				return false
			}
		}
		return almost(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
