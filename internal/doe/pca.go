package doe

import (
	"errors"
	"math"
	"sort"
)

// PCAResult holds a principal component analysis of an observation matrix.
type PCAResult struct {
	// Eigenvalues in decreasing order (variances along components).
	Eigenvalues []float64
	// Components[i] is the unit eigenvector of the i-th component, in the
	// original variable space.
	Components [][]float64
	// Explained[i] is Eigenvalues[i] / sum(Eigenvalues).
	Explained []float64
	// Means holds per-variable means removed before analysis.
	Means []float64
	// Scales holds the per-variable standard deviations divided out when
	// standardized PCA was requested (nil otherwise).
	Scales []float64
}

// PCA computes principal components of data (rows = observations, columns
// = variables). standardize selects correlation-matrix PCA (each variable
// scaled to unit variance), appropriate when variables have different
// units — as with the mixed metrics of the factorial experiments.
func PCA(data [][]float64, standardize bool) (PCAResult, error) {
	n := len(data)
	if n < 2 {
		return PCAResult{}, errors.New("doe: PCA needs at least two observations")
	}
	p := len(data[0])
	if p == 0 {
		return PCAResult{}, errors.New("doe: PCA needs at least one variable")
	}
	for _, row := range data {
		if len(row) != p {
			return PCAResult{}, errors.New("doe: ragged observation matrix")
		}
	}

	means := make([]float64, p)
	for _, row := range data {
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}

	centered := make([][]float64, n)
	for i, row := range data {
		centered[i] = make([]float64, p)
		for j, v := range row {
			centered[i][j] = v - means[j]
		}
	}

	var scales []float64
	if standardize {
		scales = make([]float64, p)
		for j := 0; j < p; j++ {
			var ss float64
			for i := 0; i < n; i++ {
				ss += centered[i][j] * centered[i][j]
			}
			sd := math.Sqrt(ss / float64(n-1))
			if sd == 0 {
				sd = 1 // constant variable: leave centered at zero
			}
			scales[j] = sd
			for i := 0; i < n; i++ {
				centered[i][j] /= sd
			}
		}
	}

	// Covariance (or correlation) matrix.
	cov := make([][]float64, p)
	for j := range cov {
		cov[j] = make([]float64, p)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			for l := j; l < p; l++ {
				cov[j][l] += centered[i][j] * centered[i][l]
			}
		}
	}
	for j := 0; j < p; j++ {
		for l := j; l < p; l++ {
			cov[j][l] /= float64(n - 1)
			cov[l][j] = cov[j][l]
		}
	}

	vals, vecs := JacobiEigen(cov)

	// Sort by eigenvalue, descending.
	idx := make([]int, p)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	res := PCAResult{
		Eigenvalues: make([]float64, p),
		Components:  make([][]float64, p),
		Explained:   make([]float64, p),
		Means:       means,
		Scales:      scales,
	}
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	for rank, i := range idx {
		res.Eigenvalues[rank] = vals[i]
		comp := make([]float64, p)
		for j := 0; j < p; j++ {
			comp[j] = vecs[j][i]
		}
		res.Components[rank] = comp
		if total > 0 && vals[i] > 0 {
			res.Explained[rank] = vals[i] / total
		}
	}
	return res, nil
}

// Project maps one observation onto the principal components, returning
// its component scores.
func (r PCAResult) Project(obs []float64) []float64 {
	p := len(r.Means)
	scores := make([]float64, len(r.Components))
	centered := make([]float64, p)
	for j := 0; j < p && j < len(obs); j++ {
		centered[j] = obs[j] - r.Means[j]
		if r.Scales != nil {
			centered[j] /= r.Scales[j]
		}
	}
	for i, comp := range r.Components {
		for j := 0; j < p; j++ {
			scores[i] += comp[j] * centered[j]
		}
	}
	return scores
}

// JacobiEigen computes all eigenvalues and eigenvectors of a real
// symmetric matrix with the cyclic Jacobi rotation method. vecs[i][j] is
// the i-th coordinate of the j-th eigenvector. The input is not modified.
func JacobiEigen(m [][]float64) (vals []float64, vecs [][]float64) {
	p := len(m)
	a := make([][]float64, p)
	vecs = make([][]float64, p)
	for i := range a {
		a[i] = append([]float64(nil), m[i]...)
		vecs[i] = make([]float64, p)
		vecs[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for i := 0; i < p-1; i++ {
			for j := i + 1; j < p; j++ {
				if math.Abs(a[i][j]) < 1e-30 {
					continue
				}
				// Compute the Jacobi rotation that zeroes a[i][j].
				theta := (a[j][j] - a[i][i]) / (2 * a[i][j])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				aii, ajj, aij := a[i][i], a[j][j], a[i][j]
				a[i][i] = aii - t*aij
				a[j][j] = ajj + t*aij
				a[i][j], a[j][i] = 0, 0
				for l := 0; l < p; l++ {
					if l != i && l != j {
						ali, alj := a[l][i], a[l][j]
						a[l][i] = ali - s*(alj+tau*ali)
						a[i][l] = a[l][i]
						a[l][j] = alj + s*(ali-tau*alj)
						a[j][l] = a[l][j]
					}
					vli, vlj := vecs[l][i], vecs[l][j]
					vecs[l][i] = vli - s*(vlj+tau*vli)
					vecs[l][j] = vlj + s*(vli-tau*vlj)
				}
			}
		}
	}
	vals = make([]float64, p)
	for i := 0; i < p; i++ {
		vals[i] = a[i][i]
	}
	return vals, vecs
}
