// Package doe implements the experiment-design machinery of Section 4:
// 2^k·r factorial designs with allocation of variation (the analysis the
// paper presents in Figures 16, 20, and 25 and Tables 7 and 8 to rank the
// importance of factors such as sampling period and forwarding policy),
// and principal component analysis of observation matrices via Jacobi
// eigendecomposition.
package doe

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Effect is one term of a 2^k factorial analysis: a single factor
// ("B"), an interaction ("AB"), or the mean term ("I").
type Effect struct {
	// Term is the conventional label: factor letters concatenated.
	Term string
	// Factors are the indices of the factors in the interaction.
	Factors []int
	// Estimate is the effect estimate q (half the change in response when
	// the term's sign flips from -1 to +1).
	Estimate float64
	// SS is the sum of squares attributed to the term.
	SS float64
	// Fraction is SS / SST: the portion of total variation explained.
	Fraction float64
}

// Analysis is the allocation of variation for a 2^k·r experiment.
type Analysis struct {
	FactorNames []string
	Effects     []Effect // all 2^k-1 non-mean terms, sorted by Fraction desc
	Mean        float64  // grand mean (the I term estimate)
	SST         float64  // total variation
	SSE         float64  // experimental-error sum of squares
	// ErrorFraction is SSE/SST, the paper's "Rest" wedge.
	ErrorFraction float64
	Replications  int
}

// SignTable returns the 2^k x k design matrix of factor levels in standard
// order: in row i, factor j is at its high level (+1) iff bit j of i is
// set.
func SignTable(k int) [][]int {
	rows := 1 << k
	out := make([][]int, rows)
	for i := range out {
		row := make([]int, k)
		for j := 0; j < k; j++ {
			if i>>j&1 == 1 {
				row[j] = 1
			} else {
				row[j] = -1
			}
		}
		out[i] = row
	}
	return out
}

// termLabel builds the conventional letter label for a factor subset:
// factor 0 = "A", 1 = "B", ... The empty set is "I".
func termLabel(factors []int) string {
	if len(factors) == 0 {
		return "I"
	}
	var b strings.Builder
	for _, f := range factors {
		b.WriteByte(byte('A' + f))
	}
	return b.String()
}

// Analyze2KR performs the allocation of variation for a full-factorial
// 2^k design with r replications. responses must have exactly 2^k rows in
// standard order (see SignTable); each row holds the r replicate
// observations of that run (all rows must have the same positive length).
func Analyze2KR(factorNames []string, responses [][]float64) (Analysis, error) {
	k := len(factorNames)
	if k == 0 {
		return Analysis{}, errors.New("doe: need at least one factor")
	}
	if k > 16 {
		return Analysis{}, errors.New("doe: too many factors")
	}
	rows := 1 << k
	if len(responses) != rows {
		return Analysis{}, fmt.Errorf("doe: need %d response rows for %d factors, got %d", rows, k, len(responses))
	}
	r := len(responses[0])
	if r == 0 {
		return Analysis{}, errors.New("doe: empty response row")
	}
	for i, row := range responses {
		if len(row) != r {
			return Analysis{}, fmt.Errorf("doe: row %d has %d replications, want %d", i, len(row), r)
		}
	}

	// Run means.
	means := make([]float64, rows)
	for i, row := range responses {
		for _, v := range row {
			means[i] += v
		}
		means[i] /= float64(r)
	}

	// Effect estimate for every subset of factors: q_S = (1/2^k) * sum over
	// runs of (product of signs of S) * run mean. Subset S is encoded as a
	// bitmask; each factor contributes +1 at its high level and -1 at its
	// low level, so the product for run i is +1 iff the number of S-factors
	// at their low level, popcount(S) - popcount(i & S), is even.
	an := Analysis{FactorNames: factorNames, Replications: r}
	var ssEffects float64
	for mask := 0; mask < rows; mask++ {
		q := 0.0
		lowParity := popcount(mask)
		for i := 0; i < rows; i++ {
			if (lowParity-popcount(i&mask))%2 == 0 {
				q += means[i]
			} else {
				q -= means[i]
			}
		}
		q /= float64(rows)
		if mask == 0 {
			an.Mean = q
			continue
		}
		var factors []int
		for j := 0; j < k; j++ {
			if mask>>j&1 == 1 {
				factors = append(factors, j)
			}
		}
		ss := float64(rows) * float64(r) * q * q
		ssEffects += ss
		an.Effects = append(an.Effects, Effect{
			Term:     termLabel(factors),
			Factors:  factors,
			Estimate: q,
			SS:       ss,
		})
	}

	// Error sum of squares: within-run variation.
	for i, row := range responses {
		for _, v := range row {
			d := v - means[i]
			an.SSE += d * d
		}
	}
	an.SST = ssEffects + an.SSE
	if an.SST > 0 {
		for i := range an.Effects {
			an.Effects[i].Fraction = an.Effects[i].SS / an.SST
		}
		an.ErrorFraction = an.SSE / an.SST
	}
	sort.SliceStable(an.Effects, func(i, j int) bool {
		return an.Effects[i].Fraction > an.Effects[j].Fraction
	})
	return an, nil
}

// TopEffects returns the n largest effects (or all if fewer).
func (a Analysis) TopEffects(n int) []Effect {
	if n > len(a.Effects) {
		n = len(a.Effects)
	}
	return a.Effects[:n]
}

// EffectByTerm returns the effect with the given label, if present.
func (a Analysis) EffectByTerm(term string) (Effect, bool) {
	for _, e := range a.Effects {
		if e.Term == term {
			return e, true
		}
	}
	return Effect{}, false
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Sanity guard: variation fractions must sum to ~1 for a valid analysis.
// Exposed for tests and report generation.
func (a Analysis) FractionSum() float64 {
	s := a.ErrorFraction
	for _, e := range a.Effects {
		s += e.Fraction
	}
	return s
}
