package doe

import (
	"testing"

	"rocc/internal/rng"
)

func TestEffectCIsSeparateSignalFromNoise(t *testing.T) {
	// Strong A effect, no B effect, small replication noise.
	r := rng.New(1)
	responses := make([][]float64, 4)
	for i := range responses {
		base := 100.0
		if i&1 == 1 { // A high
			base += 40
		}
		row := make([]float64, 5)
		for j := range row {
			row[j] = base + r.Normal(0, 2)
		}
		responses[i] = row
	}
	an, err := Analyze2KR([]string{"A", "B"}, responses)
	if err != nil {
		t.Fatal(err)
	}
	cis, err := an.EffectCIs(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(cis) != 3 {
		t.Fatalf("%d CIs", len(cis))
	}
	byTerm := map[string]EffectCI{}
	for _, ci := range cis {
		byTerm[ci.Term] = ci
		if ci.HalfWidth <= 0 {
			t.Fatalf("non-positive half-width for %s", ci.Term)
		}
	}
	if !byTerm["A"].Significant {
		t.Fatalf("A effect (%v ± %v) should be significant", byTerm["A"].Estimate, byTerm["A"].HalfWidth)
	}
	if byTerm["B"].Significant {
		t.Fatalf("B effect (%v ± %v) should be noise", byTerm["B"].Estimate, byTerm["B"].HalfWidth)
	}

	sig, err := an.SignificantEffects(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 1 || sig[0].Term != "A" {
		t.Fatalf("significant set %v", sig)
	}
}

func TestEffectCIErrors(t *testing.T) {
	an, err := Analyze2KR([]string{"A"}, [][]float64{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.EffectCIs(0.95); err == nil {
		t.Fatal("r=1 should fail")
	}
	an2, err := Analyze2KR([]string{"A"}, [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an2.EffectCIs(1.5); err == nil {
		t.Fatal("bad level should fail")
	}
	if _, err := an2.EffectCIs(0.9); err != nil {
		t.Fatal(err)
	}
}
