// Package resources models the shared system resources of the ROCC model:
// CPUs scheduled round-robin with a fixed quantum, the interconnect
// (a contended single-channel network for NOW/SMP or a contention-free
// direct network for MPP), and the bounded kernel pipes through which
// instrumented application processes hand samples to a Paradyn daemon.
//
// Every resource accounts occupancy time per owner class, which is exactly
// the "resource occupancy" the ROCC model is named for: direct IS overhead
// is the occupancy attributed to instrumentation processes.
package resources

import (
	"math"

	"rocc/internal/des"
)

// epsilon below which a remaining CPU demand counts as finished, guarding
// against float round-off in quantum arithmetic.
const epsilon = 1e-9

// CPU is a multi-core processor scheduled with a preemptive round-robin
// policy and fixed scheduling quantum (10,000 microseconds in Table 2).
// Requests longer than the quantum are timesliced; at each expiry the
// request goes to the back of the ready queue, modeling fair sharing
// between application and instrumentation processes on a node.
type CPU struct {
	sim     *des.Simulator
	cores   int
	quantum float64

	ready   []*cpuReq
	running int

	busy      tally
	busyTotal float64

	// free recycles completed request records; each carries a fire
	// closure bound once at allocation, so the per-slice hot path
	// (Submit → dispatch → slice expiry) allocates nothing in steady
	// state.
	free []*cpuReq

	// OnOccupancy, if set, observes every completed occupancy slice
	// (owner, slice start time, slice length) — the hook the simulation
	// trace recorder uses to emit AIX-like records.
	OnOccupancy func(owner string, start, length float64)
}

type cpuReq struct {
	owner     string
	remaining float64
	slice     float64 // current quantum slice, set by dispatch
	onDone    func()
	fire      func() // calls CPU.complete(this); bound once, reused forever
}

// maxReqFree caps the request free list (a burst of queued work must not
// pin memory for the rest of a run).
const maxReqFree = 1024

// NewCPU returns a CPU with the given core count and scheduling quantum in
// microseconds. It panics on non-positive arguments.
func NewCPU(sim *des.Simulator, cores int, quantum float64) *CPU {
	if cores <= 0 {
		panic("resources: CPU needs at least one core")
	}
	if quantum <= 0 {
		panic("resources: CPU quantum must be positive")
	}
	return &CPU{sim: sim, cores: cores, quantum: quantum}
}

// Submit enqueues a CPU occupancy request of the given length for owner.
// onDone runs when the request has received its full service demand; it may
// be nil. Zero-length requests complete immediately.
func (c *CPU) Submit(owner string, length float64, onDone func()) {
	if length < 0 || math.IsNaN(length) {
		panic("resources: negative or NaN CPU request")
	}
	if length <= epsilon {
		if onDone != nil {
			onDone()
		}
		return
	}
	var req *cpuReq
	if n := len(c.free); n > 0 {
		req = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		req.owner, req.remaining, req.onDone = owner, length, onDone
	} else {
		req = &cpuReq{owner: owner, remaining: length, onDone: onDone}
		req.fire = func() { c.complete(req) }
	}
	c.ready = append(c.ready, req)
	c.dispatch()
}

func (c *CPU) dispatch() {
	for c.running < c.cores && len(c.ready) > 0 {
		req := c.ready[0]
		c.ready = c.ready[1:]
		c.running++
		slice := req.remaining
		if slice > c.quantum {
			slice = c.quantum
		}
		req.slice = slice
		c.sim.Schedule(slice, req.fire)
	}
}

// complete runs at a slice's expiry: account the slice, then finish the
// request (recycling its record) or requeue its remainder.
func (c *CPU) complete(req *cpuReq) {
	slice := req.slice
	c.busy.add(req.owner, slice)
	c.busyTotal += slice
	if c.OnOccupancy != nil {
		c.OnOccupancy(req.owner, c.sim.Now()-slice, slice)
	}
	req.remaining -= slice
	c.running--
	if req.remaining <= epsilon {
		done := req.onDone
		req.onDone = nil
		if len(c.free) < maxReqFree {
			c.free = append(c.free, req)
		}
		if done != nil {
			done()
		}
	} else {
		c.ready = append(c.ready, req)
	}
	c.dispatch()
}

// QueueLen returns the number of requests waiting (not running).
func (c *CPU) QueueLen() int { return len(c.ready) }

// Running returns the number of requests currently holding a core.
func (c *CPU) Running() int { return c.running }

// Busy returns accumulated occupancy time for an owner class, in
// microseconds of CPU time.
func (c *CPU) Busy(owner string) float64 { return c.busy.get(owner) }

// BusyTotal returns accumulated occupancy across all owners.
func (c *CPU) BusyTotal() float64 { return c.busyTotal }

// ResetAccounting clears occupancy accounting without disturbing queued or
// running requests; used for warmup (initial-transient) removal.
func (c *CPU) ResetAccounting() {
	c.busy.reset()
	c.busyTotal = 0
}

// Owners returns the set of owner classes that have accumulated CPU time.
func (c *CPU) Owners() []string { return c.busy.owners() }

// Utilization returns the fraction of total core-time an owner occupied
// over elapsed microseconds of simulated time.
func (c *CPU) Utilization(owner string, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return c.busy.get(owner) / (float64(c.cores) * elapsed)
}
