package resources

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"rocc/internal/des"
)

func TestCPUSingleRequest(t *testing.T) {
	sim := des.New()
	cpu := NewCPU(sim, 1, 10000)
	done := -1.0
	cpu.Submit("app", 2500, func() { done = sim.Now() })
	sim.RunAll()
	if done != 2500 {
		t.Fatalf("completion at %v, want 2500", done)
	}
	if got := cpu.Busy("app"); got != 2500 {
		t.Fatalf("busy %v", got)
	}
	if cpu.BusyTotal() != 2500 {
		t.Fatal("busy total")
	}
}

func TestCPURoundRobinFairness(t *testing.T) {
	// Two 20000-us requests on one core with a 10000-us quantum interleave:
	// A runs [0,10k), B [10k,20k), A [20k,30k), B [30k,40k).
	sim := des.New()
	cpu := NewCPU(sim, 1, 10000)
	var doneA, doneB float64
	cpu.Submit("A", 20000, func() { doneA = sim.Now() })
	cpu.Submit("B", 20000, func() { doneB = sim.Now() })
	sim.RunAll()
	if doneA != 30000 || doneB != 40000 {
		t.Fatalf("doneA=%v doneB=%v, want 30000/40000", doneA, doneB)
	}
}

func TestCPUShortRequestNotStarved(t *testing.T) {
	// A short IS request behind a long application burst gets the CPU
	// after one quantum, not after the whole burst — the essence of the
	// round-robin sharing the ROCC model depends on.
	sim := des.New()
	cpu := NewCPU(sim, 1, 10000)
	var donePd float64
	cpu.Submit("app", 100000, nil)
	cpu.Submit("pd", 300, func() { donePd = sim.Now() })
	sim.RunAll()
	if donePd != 10300 {
		t.Fatalf("pd done at %v, want 10300", donePd)
	}
}

func TestCPUMultiCore(t *testing.T) {
	sim := des.New()
	cpu := NewCPU(sim, 2, 10000)
	var times []float64
	for i := 0; i < 2; i++ {
		cpu.Submit("app", 5000, func() { times = append(times, sim.Now()) })
	}
	sim.RunAll()
	if len(times) != 2 || times[0] != 5000 || times[1] != 5000 {
		t.Fatalf("parallel completions %v", times)
	}
	if cpu.Utilization("app", 5000) != 1.0 {
		t.Fatalf("utilization %v", cpu.Utilization("app", 5000))
	}
}

func TestCPUZeroLength(t *testing.T) {
	sim := des.New()
	cpu := NewCPU(sim, 1, 10000)
	called := false
	cpu.Submit("x", 0, func() { called = true })
	if !called {
		t.Fatal("zero-length request should complete synchronously")
	}
	cpu.Submit("x", 5, nil) // nil onDone must not panic
	sim.RunAll()
}

func TestCPUPanics(t *testing.T) {
	sim := des.New()
	mustPanic(t, func() { NewCPU(sim, 0, 1) })
	mustPanic(t, func() { NewCPU(sim, 1, 0) })
	cpu := NewCPU(sim, 1, 10)
	mustPanic(t, func() { cpu.Submit("x", -1, nil) })
	mustPanic(t, func() { cpu.Submit("x", math.NaN(), nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCPUOwnersAndQueue(t *testing.T) {
	sim := des.New()
	cpu := NewCPU(sim, 1, 1000)
	cpu.Submit("a", 500, nil)
	cpu.Submit("b", 500, nil)
	if cpu.Running() != 1 || cpu.QueueLen() != 1 {
		t.Fatalf("running=%d queued=%d", cpu.Running(), cpu.QueueLen())
	}
	sim.RunAll()
	if len(cpu.Owners()) != 2 {
		t.Fatalf("owners %v", cpu.Owners())
	}
	if cpu.Utilization("a", 0) != 0 {
		t.Fatal("zero elapsed should give zero utilization")
	}
}

func TestNetworkContendedFIFO(t *testing.T) {
	sim := des.New()
	net := NewNetwork(sim, true)
	var order []string
	net.Submit("a", 100, func() { order = append(order, "a") })
	net.Submit("b", 50, func() { order = append(order, "b") })
	net.Submit("c", 10, func() { order = append(order, "c") })
	if net.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", net.QueueLen())
	}
	sim.RunAll()
	if sim.Now() != 160 {
		t.Fatalf("finish time %v, want 160 (serialized)", sim.Now())
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order %v", order)
	}
	if net.Transfers("a") != 1 || net.BusyTotal() != 160 {
		t.Fatal("accounting wrong")
	}
}

func TestNetworkContentionFree(t *testing.T) {
	sim := des.New()
	net := NewNetwork(sim, false)
	var finish []float64
	net.Submit("a", 100, func() { finish = append(finish, sim.Now()) })
	net.Submit("b", 100, func() { finish = append(finish, sim.Now()) })
	sim.RunAll()
	if sim.Now() != 100 {
		t.Fatalf("finish time %v, want 100 (parallel)", sim.Now())
	}
	if len(finish) != 2 {
		t.Fatal("missing completions")
	}
	if net.Contended() {
		t.Fatal("mode flag wrong")
	}
	if u := net.Utilization("a", 100); u != 1.0 {
		t.Fatalf("offered load %v", u)
	}
	if net.Utilization("a", 0) != 0 {
		t.Fatal("zero elapsed")
	}
}

func TestNetworkPanics(t *testing.T) {
	sim := des.New()
	net := NewNetwork(sim, true)
	mustPanic(t, func() { net.Submit("x", -5, nil) })
}

func TestPipeBasics(t *testing.T) {
	p := NewPipe(2)
	if !p.Put(Sample{GenTime: 1}, nil) || !p.Put(Sample{GenTime: 2}, nil) {
		t.Fatal("puts under capacity should succeed")
	}
	if p.Len() != 2 || p.Cap() != 2 || p.Puts() != 2 {
		t.Fatal("length/cap accounting")
	}
	s, ok := p.Get()
	if !ok || s.GenTime != 1 {
		t.Fatalf("FIFO violated: %+v", s)
	}
}

func TestPipeBlocksWriterAndUnblocksOnGet(t *testing.T) {
	p := NewPipe(1)
	p.Put(Sample{GenTime: 1}, nil)
	unblocked := false
	if p.Put(Sample{GenTime: 2}, func() { unblocked = true }) {
		t.Fatal("put on full pipe should block")
	}
	if p.Blocked() != 1 {
		t.Fatal("blocked count")
	}
	s, _ := p.Get()
	if s.GenTime != 1 {
		t.Fatal("wrong sample")
	}
	if !unblocked {
		t.Fatal("blocked writer not released by Get")
	}
	if p.Len() != 1 {
		t.Fatal("blocked sample should have entered the pipe")
	}
	s, _ = p.Get()
	if s.GenTime != 2 {
		t.Fatal("blocked sample lost")
	}
}

func TestPipeOnData(t *testing.T) {
	// Every accepted sample wakes the reader: a daemon waiting on a batch
	// threshold needs to recheck on each arrival, not only on the
	// empty-to-non-empty transition.
	p := NewPipe(4)
	wakeups := 0
	p.SetOnData(func() { wakeups++ })
	p.Put(Sample{}, nil)
	p.Put(Sample{}, nil)
	if wakeups != 2 {
		t.Fatalf("wakeups %d, want 2", wakeups)
	}
	p.Get()
	p.Get()
	p.Put(Sample{}, nil)
	if wakeups != 3 {
		t.Fatalf("wakeups %d, want 3", wakeups)
	}
	// A blocked put wakes the reader when it finally enters via Get.
	p2 := NewPipe(1)
	w2 := 0
	p2.SetOnData(func() { w2++ })
	p2.Put(Sample{}, nil)
	p2.Put(Sample{}, nil) // blocks
	if w2 != 1 {
		t.Fatalf("blocked put should not wake yet: %d", w2)
	}
	p2.Get()
	if w2 != 2 {
		t.Fatalf("unblocked sample should wake reader: %d", w2)
	}
}

func TestPipeTryPutDrops(t *testing.T) {
	p := NewPipe(1)
	if !p.TryPut(Sample{}) {
		t.Fatal("first TryPut should succeed")
	}
	if p.TryPut(Sample{}) {
		t.Fatal("TryPut on full pipe should fail")
	}
	if p.Dropped() != 1 {
		t.Fatal("dropped count")
	}
}

func TestPipeDrain(t *testing.T) {
	p := NewPipe(8)
	for i := 0; i < 5; i++ {
		p.Put(Sample{GenTime: float64(i)}, nil)
	}
	batch := p.Drain(3)
	if len(batch) != 3 || batch[0].GenTime != 0 || batch[2].GenTime != 2 {
		t.Fatalf("batch %v", batch)
	}
	rest := p.Drain(0)
	if len(rest) != 2 {
		t.Fatalf("drain-all returned %d", len(rest))
	}
	if p.Len() != 0 {
		t.Fatal("pipe not empty")
	}
	if got := p.Drain(4); len(got) != 0 {
		t.Fatal("drain of empty pipe")
	}
}

func TestPipeGetEmpty(t *testing.T) {
	p := NewPipe(1)
	if _, ok := p.Get(); ok {
		t.Fatal("Get on empty pipe")
	}
	mustPanic(t, func() { NewPipe(0) })
}

// Property: pipe preserves FIFO order and never exceeds capacity, under any
// interleaving of puts and gets.
func TestQuickPipeFIFO(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		capacity := int(capSeed)%8 + 1
		p := NewPipe(capacity)
		nextPut, nextGet := 0, 0
		for _, isPut := range ops {
			if isPut {
				p.Put(Sample{GenTime: float64(nextPut)}, nil)
				nextPut++
			} else if s, ok := p.Get(); ok {
				if int(s.GenTime) != nextGet {
					return false
				}
				nextGet++
			}
			if p.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CPU conserves work — total busy time equals total demand once
// all requests complete, regardless of core count and quantum.
func TestQuickCPUWorkConservation(t *testing.T) {
	f := func(lengths []uint16, cores8, quantum16 uint8) bool {
		cores := int(cores8)%4 + 1
		quantum := float64(int(quantum16)*20) + 100
		sim := des.New()
		cpu := NewCPU(sim, cores, quantum)
		total := 0.0
		for _, l := range lengths {
			d := float64(l % 10000)
			total += d
			cpu.Submit("w", d, nil)
		}
		sim.RunAll()
		return math.Abs(cpu.Busy("w")-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: contended network serializes — completion time equals the sum
// of lengths when all requests are submitted at time zero.
func TestQuickNetworkSerializes(t *testing.T) {
	f := func(lengths []uint16) bool {
		sim := des.New()
		net := NewNetwork(sim, true)
		total := 0.0
		for _, l := range lengths {
			d := float64(l)
			total += d
			net.Submit("w", d, nil)
		}
		sim.RunAll()
		return math.Abs(sim.Now()-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeDropNewestPolicy(t *testing.T) {
	p := NewPipe(2)
	p.SetPolicy(DropNewest)
	if p.Policy() != DropNewest {
		t.Fatal("policy accessor")
	}
	p.Put(Sample{GenTime: 1}, nil)
	p.Put(Sample{GenTime: 2}, nil)
	if !p.Put(Sample{GenTime: 3}, nil) {
		t.Fatal("DropNewest writer must not block")
	}
	if p.Blocked() != 0 || p.Len() != 2 {
		t.Fatal("DropNewest must not queue the writer or grow the pipe")
	}
	if p.Dropped() != 1 || p.DroppedNewest() != 1 || p.DroppedOldest() != 0 {
		t.Fatalf("drop accounting: %d/%d/%d", p.Dropped(), p.DroppedNewest(), p.DroppedOldest())
	}
	s, _ := p.Get()
	if s.GenTime != 1 {
		t.Fatal("DropNewest must keep the oldest samples")
	}
}

func TestPipeDropOldestPolicy(t *testing.T) {
	p := NewPipe(2)
	p.SetPolicy(DropOldest)
	p.Put(Sample{GenTime: 1}, nil)
	p.Put(Sample{GenTime: 2}, nil)
	if !p.Put(Sample{GenTime: 3}, nil) {
		t.Fatal("DropOldest writer must not block")
	}
	if p.Len() != 2 || p.Dropped() != 1 || p.DroppedOldest() != 1 {
		t.Fatalf("eviction accounting: len %d dropped %d", p.Len(), p.Dropped())
	}
	s, _ := p.Get()
	if s.GenTime != 2 {
		t.Fatalf("oldest not evicted: got %v", s.GenTime)
	}
	s, _ = p.Get()
	if s.GenTime != 3 {
		t.Fatal("newest sample lost")
	}
}

func TestPipeBlockedWaitAccounting(t *testing.T) {
	now := des.Time(0)
	p := NewPipe(1)
	p.SetClock(func() des.Time { return now })
	p.Put(Sample{}, nil)
	now = 10
	p.Put(Sample{}, nil) // blocks at t=10
	now = 25
	if got := p.BlockedWaitTotal(); got != 15 {
		t.Fatalf("in-progress wait %v, want 15", got)
	}
	p.Get() // admits the blocked writer at t=25
	if got := p.BlockedWaitTotal(); got != 15 {
		t.Fatalf("completed wait %v, want 15", got)
	}
	now = 100
	if got := p.BlockedWaitTotal(); got != 15 {
		t.Fatal("completed wait must not keep growing")
	}
	p.ResetAccounting()
	if p.BlockedWaitTotal() != 0 || p.Puts() != 0 || p.Dropped() != 0 {
		t.Fatal("ResetAccounting must clear counters")
	}
}

func TestPipeCapacitySqueeze(t *testing.T) {
	p := NewPipe(4)
	for i := 0; i < 3; i++ {
		p.Put(Sample{GenTime: float64(i)}, nil)
	}
	p.SetCapacityLimit(2)
	if p.CapacityLimit() != 2 {
		t.Fatal("limit accessor")
	}
	// Above the squeezed capacity: writers block even though Cap() has room.
	if p.Put(Sample{GenTime: 9}, nil) {
		t.Fatal("put above squeeze limit must block")
	}
	// Draining below the limit does not admit the blocked writer until
	// there is space under the squeezed capacity.
	p.Get() // len 2 == limit, still full
	if p.Blocked() != 1 {
		t.Fatal("writer admitted above the squeeze limit")
	}
	p.Get() // len 1 < limit: admit
	if p.Blocked() != 0 || p.Len() != 2 {
		t.Fatalf("blocked writer not admitted: blocked %d len %d", p.Blocked(), p.Len())
	}
	// Removing the limit restores the full capacity for writers.
	p.SetCapacityLimit(0)
	if !p.Put(Sample{}, nil) || !p.Put(Sample{}, nil) {
		t.Fatal("puts under restored capacity should succeed")
	}
	if p.Len() != 4 {
		t.Fatalf("len %d, want 4", p.Len())
	}
}

func TestPipeSqueezeReleaseAdmitsBlocked(t *testing.T) {
	p := NewPipe(4)
	p.SetCapacityLimit(1)
	p.Put(Sample{GenTime: 1}, nil)
	released := 0
	p.Put(Sample{GenTime: 2}, func() { released++ })
	p.Put(Sample{GenTime: 3}, func() { released++ })
	if p.Blocked() != 2 {
		t.Fatal("writers should block under the squeeze")
	}
	p.SetCapacityLimit(0) // pressure ends: both writers fit
	if released != 2 || p.Blocked() != 0 || p.Len() != 3 {
		t.Fatalf("squeeze release: released %d blocked %d len %d", released, p.Blocked(), p.Len())
	}
}

func TestOverflowPolicyStrings(t *testing.T) {
	if Block.String() != "block" || DropNewest.String() != "drop-newest" || DropOldest.String() != "drop-oldest" {
		t.Fatal("policy strings")
	}
	if OverflowPolicy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

// pipeEvents records PipeObserver callbacks as compact strings.
type pipeEvents struct{ got []string }

func (p *pipeEvents) PipePut(pipe int, t float64, s Sample, depth int) {
	p.got = append(p.got, fmt.Sprintf("put p%d seq%d depth%d", pipe, s.Seq, depth))
}
func (p *pipeEvents) PipeBlocked(pipe int, t float64, s Sample) {
	p.got = append(p.got, fmt.Sprintf("blocked p%d seq%d", pipe, s.Seq))
}
func (p *pipeEvents) PipeDropped(pipe int, t float64, s Sample, oldest bool) {
	p.got = append(p.got, fmt.Sprintf("dropped p%d seq%d oldest=%v", pipe, s.Seq, oldest))
}
func (p *pipeEvents) PipeGet(pipe int, t float64, s Sample, depth int) {
	p.got = append(p.got, fmt.Sprintf("get p%d seq%d depth%d", pipe, s.Seq, depth))
}

// The pipe reports every lifecycle transition to its observer: accepted
// puts with resulting depth, blocked writers, drops under each overflow
// policy (flagging DropOldest evictions), and gets with remaining depth
// — including the deferred put when a blocked writer is admitted.
func TestPipeObserverLifecycle(t *testing.T) {
	p := NewPipe(1)
	obs := &pipeEvents{}
	p.SetObserver(7, obs)

	p.Put(Sample{Seq: 0}, nil)
	p.Put(Sample{Seq: 1}, func() {}) // full: writer blocks
	p.Get()                          // frees space; blocked sample enters
	p.Get()

	want := []string{
		"put p7 seq0 depth1",
		"blocked p7 seq1",
		"get p7 seq0 depth0",
		"put p7 seq1 depth1", // the admitted blocked writer
		"get p7 seq1 depth0",
	}
	if len(obs.got) != len(want) {
		t.Fatalf("events %v, want %v", obs.got, want)
	}
	for i := range want {
		if obs.got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, obs.got[i], want[i], obs.got)
		}
	}
}

func TestPipeObserverDropPolicies(t *testing.T) {
	// DropNewest: the arriving sample is reported dropped.
	p := NewPipe(1)
	obs := &pipeEvents{}
	p.SetObserver(0, obs)
	p.SetPolicy(DropNewest)
	p.Put(Sample{Seq: 0}, nil)
	p.Put(Sample{Seq: 1}, nil)
	if got := obs.got[len(obs.got)-1]; got != "dropped p0 seq1 oldest=false" {
		t.Fatalf("DropNewest reported %q", got)
	}

	// DropOldest: the evicted buffered sample is reported, then the new
	// sample's put.
	p = NewPipe(1)
	obs = &pipeEvents{}
	p.SetObserver(0, obs)
	p.SetPolicy(DropOldest)
	p.Put(Sample{Seq: 0}, nil)
	p.Put(Sample{Seq: 1}, nil)
	tail := obs.got[len(obs.got)-2:]
	if tail[0] != "dropped p0 seq0 oldest=true" || tail[1] != "put p0 seq1 depth1" {
		t.Fatalf("DropOldest reported %v", tail)
	}

	// TryPut on a full pipe.
	p = NewPipe(1)
	obs = &pipeEvents{}
	p.SetObserver(0, obs)
	p.TryPut(Sample{Seq: 0})
	p.TryPut(Sample{Seq: 1})
	if got := obs.got[len(obs.got)-1]; got != "dropped p0 seq1 oldest=false" {
		t.Fatalf("TryPut reported %q", got)
	}
}
