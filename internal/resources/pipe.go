package resources

// Sample is one instrumentation data sample flowing from an application
// process through a pipe to a Paradyn daemon and on to the main process.
type Sample struct {
	// GenTime is the simulated time the sample was generated; monitoring
	// latency is measured from here to receipt at the main Paradyn process.
	GenTime float64
	// Node and Proc identify the originating application process.
	Node, Proc int
}

// Pipe is the bounded kernel buffer (a Unix pipe in the real system)
// between an instrumented application process and its local Paradyn daemon.
// When the pipe is full, the writing application process blocks — the
// effect §4.3.3 of the paper identifies at small sampling periods, where a
// full pipe stalls the application until the daemon drains samples.
type Pipe struct {
	capacity int
	items    []Sample
	blocked  []blockedPut

	// onData, if set, fires whenever a sample enters the pipe; the daemon
	// uses it to wake up (it may be waiting on a batch threshold, so every
	// arrival matters, not just the empty-to-non-empty transition).
	onData func()

	// dropped counts samples discarded by TryPut on a full pipe.
	dropped int
	puts    int
}

type blockedPut struct {
	s          Sample
	onAccepted func()
}

// NewPipe returns a pipe with the given sample capacity (must be positive).
func NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		panic("resources: pipe capacity must be positive")
	}
	return &Pipe{capacity: capacity}
}

// SetOnData registers the reader wake-up callback.
func (p *Pipe) SetOnData(fn func()) { p.onData = fn }

// Len returns the number of buffered samples.
func (p *Pipe) Len() int { return len(p.items) }

// Cap returns the pipe capacity.
func (p *Pipe) Cap() int { return p.capacity }

// Blocked returns the number of writers currently blocked on a full pipe.
func (p *Pipe) Blocked() int { return len(p.blocked) }

// Puts returns the total samples accepted into the pipe.
func (p *Pipe) Puts() int { return p.puts }

// Dropped returns samples discarded by TryPut.
func (p *Pipe) Dropped() int { return p.dropped }

// Put writes a sample. If there is room it is accepted immediately and Put
// returns true. Otherwise the writer is blocked: Put returns false and
// onAccepted fires later, when a Get frees space and the sample enters the
// pipe. onAccepted may be nil.
func (p *Pipe) Put(s Sample, onAccepted func()) bool {
	if len(p.items) < p.capacity {
		p.accept(s)
		return true
	}
	p.blocked = append(p.blocked, blockedPut{s: s, onAccepted: onAccepted})
	return false
}

// TryPut writes a sample if there is room, otherwise drops it and returns
// false. It models lossy instrumentation buffers for ablation experiments.
func (p *Pipe) TryPut(s Sample) bool {
	if len(p.items) < p.capacity {
		p.accept(s)
		return true
	}
	p.dropped++
	return false
}

func (p *Pipe) accept(s Sample) {
	p.items = append(p.items, s)
	p.puts++
	if p.onData != nil {
		p.onData()
	}
}

// Get removes and returns the oldest sample. When space frees and writers
// are blocked, the oldest blocked sample enters the pipe and its onAccepted
// callback fires.
func (p *Pipe) Get() (Sample, bool) {
	if len(p.items) == 0 {
		return Sample{}, false
	}
	s := p.items[0]
	p.items = p.items[1:]
	if len(p.blocked) > 0 {
		bp := p.blocked[0]
		p.blocked = p.blocked[1:]
		p.accept(bp.s)
		if bp.onAccepted != nil {
			bp.onAccepted()
		}
	}
	return s, true
}

// Drain removes and returns up to max samples (all buffered samples if max
// <= 0), unblocking writers as space frees. The daemon uses Drain to build
// a batch under the BF policy.
func (p *Pipe) Drain(max int) []Sample {
	if max <= 0 || max > len(p.items)+len(p.blocked) {
		max = len(p.items) // blocked items enter as space frees below
	}
	var out []Sample
	for len(out) < max {
		s, ok := p.Get()
		if !ok {
			break
		}
		out = append(out, s)
	}
	return out
}
