package resources

import (
	"fmt"

	"rocc/internal/des"
)

// Sample is one instrumentation data sample flowing from an application
// process through a pipe to a Paradyn daemon and on to the main process.
type Sample struct {
	// GenTime is the simulated time the sample was generated; monitoring
	// latency is measured from here to receipt at the main Paradyn process.
	GenTime float64
	// Node and Proc identify the originating application process.
	Node, Proc int
	// Seq is the sample's sequence number within its originating process
	// (counted from run start, never reset), so (Node, Proc, Seq) is a
	// stable identity for tracing a sample's path through the system.
	Seq int
}

// PipeObserver receives pipe-level lifecycle notifications for tracing.
// depth is the buffered-sample count after the operation; oldest marks a
// DropOldest eviction (false for a discarded arrival).
type PipeObserver interface {
	PipePut(pipe int, t float64, s Sample, depth int)
	PipeBlocked(pipe int, t float64, s Sample)
	PipeDropped(pipe int, t float64, s Sample, oldest bool)
	PipeGet(pipe int, t float64, s Sample, depth int)
}

// OverflowPolicy selects what a Pipe does with a Put when it is full.
type OverflowPolicy int

const (
	// Block suspends the writer until space frees — the real write(2)
	// behavior on a full pipe, the §4.3.3 effect, and the default.
	Block OverflowPolicy = iota
	// DropNewest discards the incoming sample; the writer proceeds.
	DropNewest
	// DropOldest evicts the oldest buffered sample to admit the new one,
	// preserving the freshest data; the writer proceeds.
	DropOldest
)

// String implements fmt.Stringer.
func (o OverflowPolicy) String() string {
	switch o {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(o))
}

// Pipe is the bounded kernel buffer (a Unix pipe in the real system)
// between an instrumented application process and its local Paradyn daemon.
// Under the default Block policy a Put into a full pipe blocks the writing
// application process — the effect §4.3.3 of the paper identifies at small
// sampling periods, where a full pipe stalls the application until the
// daemon drains samples. The DropNewest and DropOldest policies model
// lossy kernel buffers instead: the writer never blocks and discarded
// samples are accounted in Dropped.
type Pipe struct {
	capacity int
	limit    int // fault-injected capacity squeeze; 0 = no limit
	policy   OverflowPolicy
	items    []Sample
	blocked  []blockedPut

	// onData, if set, fires whenever a sample enters the pipe; the daemon
	// uses it to wake up (it may be waiting on a batch threshold, so every
	// arrival matters, not just the empty-to-non-empty transition).
	onData func()

	// clock, if set, timestamps blocked writers for wait-time accounting.
	clock func() des.Time

	// obs, if set, receives put/block/drop/get notifications; obsID
	// identifies this pipe in them. Nil-guarded: costs one branch per
	// operation when tracing is off.
	obs   PipeObserver
	obsID int

	// dropped counts samples discarded for any reason (TryPut on a full
	// pipe, DropNewest, DropOldest evictions).
	dropped    int
	droppedNew int
	droppedOld int
	puts       int

	// blockedWait accumulates the simulated time writers spent blocked on
	// a full pipe (completed waits only; see BlockedWaitTotal).
	blockedWait float64
}

type blockedPut struct {
	s          Sample
	onAccepted func()
	since      des.Time
}

// NewPipe returns a pipe with the given sample capacity (must be positive).
func NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		panic("resources: pipe capacity must be positive")
	}
	return &Pipe{capacity: capacity}
}

// SetOnData registers the reader wake-up callback.
func (p *Pipe) SetOnData(fn func()) { p.onData = fn }

// SetClock registers the simulation clock used to account blocked-writer
// wait time. Without a clock, BlockedWaitTotal reports zero.
func (p *Pipe) SetClock(fn func() des.Time) { p.clock = fn }

// SetPolicy selects the overflow policy (default Block).
func (p *Pipe) SetPolicy(policy OverflowPolicy) { p.policy = policy }

// SetObserver attaches a lifecycle observer; id identifies this pipe in
// the callbacks. A nil observer detaches.
func (p *Pipe) SetObserver(id int, o PipeObserver) { p.obsID, p.obs = id, o }

// Policy returns the overflow policy.
func (p *Pipe) Policy() OverflowPolicy { return p.policy }

// SetCapacityLimit squeezes the pipe's effective capacity down to limit
// samples (clamped to at least 1), modeling transient kernel buffer
// pressure; 0 removes the limit. Raising or removing the limit admits
// blocked writers into any space that opens up.
func (p *Pipe) SetCapacityLimit(limit int) {
	if limit < 0 {
		limit = 0
	}
	p.limit = limit
	p.admitBlocked()
}

// CapacityLimit returns the current squeeze limit (0 = none).
func (p *Pipe) CapacityLimit() int { return p.limit }

// effCap is the capacity currently enforced on writers.
func (p *Pipe) effCap() int {
	c := p.capacity
	if p.limit > 0 && p.limit < c {
		c = p.limit
	}
	if c < 1 {
		c = 1
	}
	return c
}

func (p *Pipe) now() des.Time {
	if p.clock == nil {
		return 0
	}
	return p.clock()
}

// Len returns the number of buffered samples.
func (p *Pipe) Len() int { return len(p.items) }

// Cap returns the pipe capacity.
func (p *Pipe) Cap() int { return p.capacity }

// Blocked returns the number of writers currently blocked on a full pipe.
func (p *Pipe) Blocked() int { return len(p.blocked) }

// Puts returns the total samples accepted into the pipe.
func (p *Pipe) Puts() int { return p.puts }

// Dropped returns the total samples discarded: TryPut on a full pipe plus
// DropNewest discards plus DropOldest evictions.
func (p *Pipe) Dropped() int { return p.dropped }

// DroppedNewest returns samples discarded on arrival (TryPut, DropNewest).
func (p *Pipe) DroppedNewest() int { return p.droppedNew }

// DroppedOldest returns buffered samples evicted by DropOldest.
func (p *Pipe) DroppedOldest() int { return p.droppedOld }

// BlockedWaitTotal returns the cumulative simulated time writers have
// spent blocked on a full pipe, including writers still blocked now.
// Requires SetClock; without a clock it returns 0.
func (p *Pipe) BlockedWaitTotal() float64 {
	w := p.blockedWait
	if p.clock != nil {
		now := p.now()
		for _, bp := range p.blocked {
			w += now - bp.since
		}
	}
	return w
}

// ResetAccounting clears the pipe's counters without disturbing buffered
// samples or blocked writers (their wait restarts at the current clock);
// used for warmup (initial-transient) removal.
func (p *Pipe) ResetAccounting() {
	p.dropped, p.droppedNew, p.droppedOld = 0, 0, 0
	p.puts = 0
	p.blockedWait = 0
	now := p.now()
	for i := range p.blocked {
		p.blocked[i].since = now
	}
}

// Put writes a sample. If there is room it is accepted immediately and Put
// returns true. On a full pipe the overflow policy decides: Block queues
// the writer (Put returns false and onAccepted fires later, when space
// frees and the sample enters the pipe); DropNewest discards the sample;
// DropOldest evicts the oldest buffered sample to admit this one. Under
// both drop policies the writer proceeds (Put returns true). onAccepted
// may be nil.
func (p *Pipe) Put(s Sample, onAccepted func()) bool {
	if len(p.items) < p.effCap() {
		p.accept(s)
		return true
	}
	switch p.policy {
	case DropNewest:
		p.dropped++
		p.droppedNew++
		if p.obs != nil {
			p.obs.PipeDropped(p.obsID, p.now(), s, false)
		}
		return true
	case DropOldest:
		evicted := p.items[0]
		p.items = p.items[1:]
		p.dropped++
		p.droppedOld++
		if p.obs != nil {
			p.obs.PipeDropped(p.obsID, p.now(), evicted, true)
		}
		p.accept(s)
		return true
	}
	p.blocked = append(p.blocked, blockedPut{s: s, onAccepted: onAccepted, since: p.now()})
	if p.obs != nil {
		p.obs.PipeBlocked(p.obsID, p.now(), s)
	}
	return false
}

// TryPut writes a sample if there is room, otherwise drops it and returns
// false. It models lossy instrumentation buffers for ablation experiments.
func (p *Pipe) TryPut(s Sample) bool {
	if len(p.items) < p.effCap() {
		p.accept(s)
		return true
	}
	p.dropped++
	p.droppedNew++
	if p.obs != nil {
		p.obs.PipeDropped(p.obsID, p.now(), s, false)
	}
	return false
}

func (p *Pipe) accept(s Sample) {
	p.items = append(p.items, s)
	p.puts++
	if p.obs != nil {
		p.obs.PipePut(p.obsID, p.now(), s, len(p.items))
	}
	if p.onData != nil {
		p.onData()
	}
}

// Get removes and returns the oldest sample. When space frees and writers
// are blocked, blocked samples enter the pipe in FIFO order and their
// onAccepted callbacks fire.
func (p *Pipe) Get() (Sample, bool) {
	if len(p.items) == 0 {
		return Sample{}, false
	}
	s := p.items[0]
	p.items = p.items[1:]
	if p.obs != nil {
		p.obs.PipeGet(p.obsID, p.now(), s, len(p.items))
	}
	p.admitBlocked()
	return s, true
}

// admitBlocked moves blocked writers into the pipe while space allows,
// oldest first, accounting their completed wait time.
func (p *Pipe) admitBlocked() {
	for len(p.blocked) > 0 && len(p.items) < p.effCap() {
		bp := p.blocked[0]
		p.blocked = p.blocked[1:]
		if p.clock != nil {
			p.blockedWait += p.now() - bp.since
		}
		p.accept(bp.s)
		if bp.onAccepted != nil {
			bp.onAccepted()
		}
	}
}

// Drain removes and returns up to max samples (all buffered samples if max
// <= 0), unblocking writers as space frees. The daemon uses Drain to build
// a batch under the BF policy.
func (p *Pipe) Drain(max int) []Sample {
	if max <= 0 || max > len(p.items)+len(p.blocked) {
		max = len(p.items) // blocked items enter as space frees below
	}
	var out []Sample
	for len(out) < max {
		s, ok := p.Get()
		if !ok {
			break
		}
		out = append(out, s)
	}
	return out
}
