package resources

import (
	"testing"

	"rocc/internal/des"
)

// FuzzPipeInvariants drives a Pipe through a random operation sequence
// (puts under every overflow policy, gets, drains, capacity squeezes) and
// checks the structural invariants that the fault layer depends on:
//
//   - the buffer never exceeds the declared capacity;
//   - blocked writers resume in FIFO order;
//   - sample conservation: every offered sample is accounted for exactly
//     once — accepted (puts) = removed by Get/Drain + still buffered +
//     evicted by DropOldest, and offered = accepted + still blocked +
//     discarded on arrival.
func FuzzPipeInvariants(f *testing.F) {
	f.Add([]byte{0, 0, 2, 0, 3, 4, 0, 1}, uint8(1), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 2, 2, 2}, uint8(2), uint8(1))
	f.Add([]byte{0, 4, 0, 0, 19, 2, 2, 0, 24, 3}, uint8(3), uint8(2))
	f.Add([]byte{0, 0, 0, 9, 2, 0, 0, 14, 2, 2, 2, 2}, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, ops []byte, cap8, pol uint8) {
		capacity := int(cap8)%8 + 1
		p := NewPipe(capacity)
		p.SetPolicy(OverflowPolicy(int(pol) % 3))
		now := des.Time(0)
		p.SetClock(func() des.Time { return now })

		var blockedOrder []int // ids of puts that blocked, in block order
		var admitted []int     // ids admitted from the blocked queue
		offered, gets := 0, 0
		for _, op := range ops {
			now++
			switch op % 5 {
			case 0, 1: // put
				id := offered
				offered++
				before := p.Blocked()
				ok := p.Put(Sample{Proc: id}, func() { admitted = append(admitted, id) })
				if !ok {
					blockedOrder = append(blockedOrder, id)
					if p.Blocked() != before+1 {
						t.Fatalf("blocked count %d, want %d", p.Blocked(), before+1)
					}
				}
			case 2: // get
				if _, ok := p.Get(); ok {
					gets++
				}
			case 3: // drain
				gets += len(p.Drain(int(op/5) % (capacity + 2)))
			case 4: // capacity squeeze / release
				p.SetCapacityLimit(int(op/5) % (capacity + 2))
			}
			if p.Len() > capacity {
				t.Fatalf("len %d exceeds capacity %d", p.Len(), capacity)
			}
			if p.Len() < 0 || p.Blocked() < 0 {
				t.Fatal("negative occupancy")
			}
		}

		// Blocked writers resume FIFO: the admitted ids are exactly the
		// first len(admitted) blocked ids, in order.
		if len(admitted) > len(blockedOrder) {
			t.Fatalf("admitted %d > ever blocked %d", len(admitted), len(blockedOrder))
		}
		for i, id := range admitted {
			if blockedOrder[i] != id {
				t.Fatalf("blocked writers resumed out of FIFO order: %v vs %v", admitted, blockedOrder)
			}
		}

		// Conservation within the pipe: accepted == removed + buffered +
		// evicted-by-DropOldest.
		if p.Puts() != gets+p.Len()+p.DroppedOldest() {
			t.Fatalf("pipe conservation: puts %d != gets %d + len %d + evicted %d",
				p.Puts(), gets, p.Len(), p.DroppedOldest())
		}
		// Conservation at the boundary: every offered sample was accepted,
		// is still blocked, or was discarded on arrival.
		if offered != p.Puts()+p.Blocked()+p.DroppedNewest() {
			t.Fatalf("offer conservation: offered %d != puts %d + blocked %d + droppedNew %d",
				offered, p.Puts(), p.Blocked(), p.DroppedNewest())
		}
		if p.Dropped() != p.DroppedNewest()+p.DroppedOldest() {
			t.Fatal("dropped split does not sum")
		}
		// Wait accounting is monotone and finite.
		if w := p.BlockedWaitTotal(); w < 0 {
			t.Fatalf("negative blocked wait %v", w)
		}
	})
}
