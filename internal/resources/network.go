package resources

import (
	"math"

	"rocc/internal/des"
)

// Network models the interconnect as a resource accepting occupancy
// requests. Two service disciplines cover the three architectures of the
// study:
//
//   - Contended: a single FIFO channel (shared Ethernet for NOW, the shared
//     bus for SMP). Requests queue; §4.3.3 of the paper shows this queue
//     becoming the bottleneck for SMP systems with >= 32 nodes.
//   - Contention-free: every transfer proceeds at full speed in parallel
//     (the "high-speed, contention-free network" assumed for the MPP case,
//     §4.4) — an infinite-server discipline.
type Network struct {
	sim       *des.Simulator
	contended bool

	queue   []*netReq
	serving bool

	busy      map[string]float64
	busyTotal float64

	// transfers counts completed occupancy requests per owner.
	transfers map[string]int

	// OnOccupancy, if set, observes every completed transfer (owner,
	// start time, length) for trace recording.
	OnOccupancy func(owner string, start, length float64)
}

type netReq struct {
	owner  string
	length float64
	onDone func()
}

// NewNetwork returns a network resource. contended selects the single
// FIFO-channel discipline; otherwise transfers do not queue.
func NewNetwork(sim *des.Simulator, contended bool) *Network {
	return &Network{
		sim:       sim,
		contended: contended,
		busy:      make(map[string]float64),
		transfers: make(map[string]int),
	}
}

// Contended reports the service discipline.
func (n *Network) Contended() bool { return n.contended }

// Submit enqueues a network occupancy request of the given length for
// owner; onDone (may be nil) runs when the transfer completes.
func (n *Network) Submit(owner string, length float64, onDone func()) {
	if length < 0 || math.IsNaN(length) {
		panic("resources: negative or NaN network request")
	}
	if !n.contended {
		n.sim.Schedule(length, func() {
			n.account(owner, length)
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	n.queue = append(n.queue, &netReq{owner: owner, length: length, onDone: onDone})
	n.serve()
}

func (n *Network) serve() {
	if n.serving || len(n.queue) == 0 {
		return
	}
	req := n.queue[0]
	n.queue = n.queue[1:]
	n.serving = true
	n.sim.Schedule(req.length, func() {
		n.account(req.owner, req.length)
		n.serving = false
		if req.onDone != nil {
			req.onDone()
		}
		n.serve()
	})
}

func (n *Network) account(owner string, length float64) {
	n.busy[owner] += length
	n.busyTotal += length
	n.transfers[owner]++
	if n.OnOccupancy != nil {
		n.OnOccupancy(owner, n.sim.Now()-length, length)
	}
}

// QueueLen returns the number of requests waiting (contended mode only).
func (n *Network) QueueLen() int { return len(n.queue) }

// Busy returns accumulated channel occupancy for an owner class.
func (n *Network) Busy(owner string) float64 { return n.busy[owner] }

// BusyTotal returns accumulated occupancy across all owners.
func (n *Network) BusyTotal() float64 { return n.busyTotal }

// Transfers returns the number of completed transfers for an owner class.
func (n *Network) Transfers(owner string) int { return n.transfers[owner] }

// ResetAccounting clears occupancy accounting without disturbing queued or
// in-flight transfers; used for warmup (initial-transient) removal.
func (n *Network) ResetAccounting() {
	n.busy = make(map[string]float64)
	n.transfers = make(map[string]int)
	n.busyTotal = 0
}

// Utilization returns the fraction of channel time an owner occupied over
// elapsed microseconds. For contention-free networks this is the offered
// load rather than a true utilization.
func (n *Network) Utilization(owner string, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return n.busy[owner] / elapsed
}
