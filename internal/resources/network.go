package resources

import (
	"math"

	"rocc/internal/des"
)

// Network models the interconnect as a resource accepting occupancy
// requests. Two service disciplines cover the three architectures of the
// study:
//
//   - Contended: a single FIFO channel (shared Ethernet for NOW, the shared
//     bus for SMP). Requests queue; §4.3.3 of the paper shows this queue
//     becoming the bottleneck for SMP systems with >= 32 nodes.
//   - Contention-free: every transfer proceeds at full speed in parallel
//     (the "high-speed, contention-free network" assumed for the MPP case,
//     §4.4) — an infinite-server discipline.
type Network struct {
	sim       *des.Simulator
	contended bool

	queue   []*netReq
	serving bool

	// busy accumulates per-owner occupancy time and completed-transfer
	// counts (tally.counts).
	busy      tally
	busyTotal float64

	// free recycles completed request records with their bound fire
	// closures, so both disciplines' transfer paths allocate nothing in
	// steady state.
	free []*netReq

	// OnOccupancy, if set, observes every completed transfer (owner,
	// start time, length) for trace recording.
	OnOccupancy func(owner string, start, length float64)
}

type netReq struct {
	owner  string
	length float64
	onDone func()
	fire   func() // calls Network.complete(this); bound once, reused forever
}

// NewNetwork returns a network resource. contended selects the single
// FIFO-channel discipline; otherwise transfers do not queue.
func NewNetwork(sim *des.Simulator, contended bool) *Network {
	return &Network{sim: sim, contended: contended}
}

// Contended reports the service discipline.
func (n *Network) Contended() bool { return n.contended }

// Submit enqueues a network occupancy request of the given length for
// owner; onDone (may be nil) runs when the transfer completes.
func (n *Network) Submit(owner string, length float64, onDone func()) {
	if length < 0 || math.IsNaN(length) {
		panic("resources: negative or NaN network request")
	}
	req := n.newReq(owner, length, onDone)
	if !n.contended {
		n.sim.Schedule(length, req.fire)
		return
	}
	n.queue = append(n.queue, req)
	n.serve()
}

func (n *Network) newReq(owner string, length float64, onDone func()) *netReq {
	if l := len(n.free); l > 0 {
		req := n.free[l-1]
		n.free[l-1] = nil
		n.free = n.free[:l-1]
		req.owner, req.length, req.onDone = owner, length, onDone
		return req
	}
	req := &netReq{owner: owner, length: length, onDone: onDone}
	req.fire = func() { n.complete(req) }
	return req
}

func (n *Network) serve() {
	if n.serving || len(n.queue) == 0 {
		return
	}
	req := n.queue[0]
	n.queue = n.queue[1:]
	n.serving = true
	n.sim.Schedule(req.length, req.fire)
}

// complete runs when a transfer's occupancy elapses: account it, recycle
// the request record, notify the submitter, and (contended mode) start the
// next queued transfer.
func (n *Network) complete(req *netReq) {
	n.account(req.owner, req.length)
	if n.contended {
		n.serving = false
	}
	done := req.onDone
	req.onDone = nil
	if len(n.free) < maxReqFree {
		n.free = append(n.free, req)
	}
	if done != nil {
		done()
	}
	if n.contended {
		n.serve()
	}
}

func (n *Network) account(owner string, length float64) {
	i := n.busy.idx(owner)
	n.busy.vals[i] += length
	n.busy.counts[i]++
	n.busyTotal += length
	if n.OnOccupancy != nil {
		n.OnOccupancy(owner, n.sim.Now()-length, length)
	}
}

// QueueLen returns the number of requests waiting (contended mode only).
func (n *Network) QueueLen() int { return len(n.queue) }

// Busy returns accumulated channel occupancy for an owner class.
func (n *Network) Busy(owner string) float64 { return n.busy.get(owner) }

// BusyTotal returns accumulated occupancy across all owners.
func (n *Network) BusyTotal() float64 { return n.busyTotal }

// Transfers returns the number of completed transfers for an owner class.
func (n *Network) Transfers(owner string) int { return n.busy.count(owner) }

// ResetAccounting clears occupancy accounting without disturbing queued or
// in-flight transfers; used for warmup (initial-transient) removal.
func (n *Network) ResetAccounting() {
	n.busy.reset()
	n.busyTotal = 0
}

// Utilization returns the fraction of channel time an owner occupied over
// elapsed microseconds. For contention-free networks this is the offered
// load rather than a true utilization.
func (n *Network) Utilization(owner string, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return n.busy.get(owner) / elapsed
}
