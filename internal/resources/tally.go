package resources

// tally accumulates per-owner occupancy time. The owner set is a handful
// of fixed class labels (app, pd, pvmd, other, paradyn), so a linear scan
// over parallel slices beats a map on the per-slice accounting hot path:
// the string compares fail fast on length (the class labels all differ in
// length) and the structure allocates nothing after the first few adds.
type tally struct {
	names  []string
	vals   []float64
	counts []int // completed-request counts (used by Network, idle for CPU)
}

// idx returns owner's slot, adding one if needed.
func (t *tally) idx(owner string) int {
	for i, n := range t.names {
		if n == owner {
			return i
		}
	}
	t.names = append(t.names, owner)
	t.vals = append(t.vals, 0)
	t.counts = append(t.counts, 0)
	return len(t.names) - 1
}

func (t *tally) add(owner string, v float64) {
	t.vals[t.idx(owner)] += v
}

func (t *tally) get(owner string) float64 {
	for i, n := range t.names {
		if n == owner {
			return t.vals[i]
		}
	}
	return 0
}

func (t *tally) count(owner string) int {
	for i, n := range t.names {
		if n == owner {
			return t.counts[i]
		}
	}
	return 0
}

// reset forgets all owners (matching the fresh-map semantics the
// accounting reset had when this was a map).
func (t *tally) reset() {
	t.names = t.names[:0]
	t.vals = t.vals[:0]
	t.counts = t.counts[:0]
}

// owners returns the owner classes with accumulated time, freshly
// allocated (callers are test/report paths).
func (t *tally) owners() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}
