package rng

import "math"

// Gamma returns a gamma variate with the given shape and scale using the
// Marsaglia-Tsang squeeze method (with the standard boost for shape < 1).
func (r *Stream) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma parameters must be positive")
	}
	if shape < 1 {
		// Boost: G(a) = G(a+1) * U^(1/a).
		u := r.open()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal(0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.open()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// GammaDist is a gamma distribution with the given shape and scale.
type GammaDist struct{ Shape, Scale float64 }

// Sample implements Dist.
func (g GammaDist) Sample(r *Stream) float64 { return r.Gamma(g.Shape, g.Scale) }

// Mean implements Dist.
func (g GammaDist) Mean() float64 { return g.Shape * g.Scale }

func (g GammaDist) String() string { return format("gamma", g.Shape, g.Scale) }
