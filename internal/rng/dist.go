package rng

import (
	"math"
	"strconv"
)

// Dist is a sampleable distribution of request lengths or inter-arrival
// times. Implementations are immutable and safe for concurrent use with
// distinct streams.
type Dist interface {
	// Sample draws one variate using the supplied stream.
	Sample(r *Stream) float64
	// Mean returns the theoretical mean of the distribution.
	Mean() float64
	// String describes the distribution in the notation of Table 2.
	String() string
}

// Constant is a degenerate distribution that always returns Value.
type Constant struct{ Value float64 }

// Sample implements Dist.
func (c Constant) Sample(*Stream) float64 { return c.Value }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.Value }

func (c Constant) String() string { return format("constant", c.Value) }

// Exponential is an exponential distribution with the given mean, written
// "exponential(m)" in the paper.
type Exponential struct{ MeanVal float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *Stream) float64 { return r.Exp(e.MeanVal) }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.MeanVal }

func (e Exponential) String() string { return format("exponential", e.MeanVal) }

// Lognormal is a lognormal distribution specified by the mean and standard
// deviation of the variate, written "lognormal(a, b)" in the paper.
type Lognormal struct{ MeanVal, SD float64 }

// Sample implements Dist.
func (l Lognormal) Sample(r *Stream) float64 { return r.Lognormal(l.MeanVal, l.SD) }

// Mean implements Dist.
func (l Lognormal) Mean() float64 { return l.MeanVal }

func (l Lognormal) String() string { return format("lognormal", l.MeanVal, l.SD) }

// Weibull is a Weibull distribution with the given shape and scale.
type Weibull struct{ Shape, Scale float64 }

// Sample implements Dist.
func (w Weibull) Sample(r *Stream) float64 { return r.Weibull(w.Shape, w.Scale) }

// Mean implements Dist.
func (w Weibull) Mean() float64 { return w.Scale * gamma(1+1/w.Shape) }

func (w Weibull) String() string { return format("weibull", w.Shape, w.Scale) }

// UniformDist is a uniform distribution on [Low, High).
type UniformDist struct{ Low, High float64 }

// Sample implements Dist.
func (u UniformDist) Sample(r *Stream) float64 { return r.Uniform(u.Low, u.High) }

// Mean implements Dist.
func (u UniformDist) Mean() float64 { return (u.Low + u.High) / 2 }

func (u UniformDist) String() string { return format("uniform", u.Low, u.High) }

// Empirical samples uniformly from a fixed set of observations; it is used
// for trace-driven simulation where the measured request lengths are
// replayed directly.
type Empirical struct{ Values []float64 }

// Sample implements Dist.
func (e Empirical) Sample(r *Stream) float64 {
	if len(e.Values) == 0 {
		return 0
	}
	return e.Values[r.Intn(len(e.Values))]
}

// Mean implements Dist.
func (e Empirical) Mean() float64 {
	if len(e.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range e.Values {
		sum += v
	}
	return sum / float64(len(e.Values))
}

func (e Empirical) String() string { return format("empirical", float64(len(e.Values))) }

// Mixture samples from one of several component distributions chosen
// with the given weights — the form produced by cluster-based workload
// characterization (Hughes, "Generating a Drive Workload from Clustered
// Data", reference [13] of the paper).
type Mixture struct {
	Components []Dist
	Weights    []float64 // same length as Components; need not sum to 1
}

// Sample implements Dist.
func (m Mixture) Sample(r *Stream) float64 {
	if len(m.Components) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if total <= 0 {
		return m.Components[r.Intn(len(m.Components))].Sample(r)
	}
	u := r.Float64() * total
	for i, w := range m.Weights {
		if u < w {
			return m.Components[i].Sample(r)
		}
		u -= w
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean implements Dist.
func (m Mixture) Mean() float64 {
	if len(m.Components) == 0 {
		return 0
	}
	total, sum := 0.0, 0.0
	for i, c := range m.Components {
		w := 1.0
		if i < len(m.Weights) {
			w = m.Weights[i]
		}
		total += w
		sum += w * c.Mean()
	}
	if total <= 0 {
		return 0
	}
	return sum / total
}

func (m Mixture) String() string {
	return format("mixture", float64(len(m.Components)))
}

// gamma is the Gamma function via the Lanczos approximation (g=7, n=9),
// accurate to ~15 significant digits for the positive arguments used here.
func gamma(x float64) float64 {
	if x < 0.5 {
		// Reflection formula.
		return math.Pi / (math.Sin(math.Pi*x) * gamma(1-x))
	}
	x--
	coef := [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	a := coef[0]
	t := x + 7.5
	for i := 1; i < len(coef); i++ {
		a += coef[i] / (x + float64(i))
	}
	return math.Sqrt(2*math.Pi) * math.Pow(t, x+0.5) * math.Exp(-t) * a
}

func format(name string, args ...float64) string {
	s := name + "("
	for i, a := range args {
		if i > 0 {
			s += ", "
		}
		s += strconv.FormatFloat(a, 'g', -1, 64)
	}
	return s + ")"
}
