package rng

import (
	"math"
	"testing"
)

func TestGammaVariatePositive(t *testing.T) {
	r := New(51)
	for _, c := range []struct{ shape, scale float64 }{{0.3, 10}, {1, 50}, {7, 2}} {
		for i := 0; i < 2000; i++ {
			if v := r.Gamma(c.shape, c.scale); v <= 0 || math.IsNaN(v) {
				t.Fatalf("gamma(%v,%v) produced %v", c.shape, c.scale, v)
			}
		}
	}
}

func TestGammaMeanSmallShape(t *testing.T) {
	// The boost path (shape < 1) must preserve the mean.
	r := New(52)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Gamma(0.5, 100)
	}
	mean := sum / n
	if math.Abs(mean-50)/50 > 0.03 {
		t.Fatalf("gamma(0.5,100) mean %v, want ~50", mean)
	}
}

func TestGammaPanics(t *testing.T) {
	r := New(1)
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v, %v) did not panic", bad[0], bad[1])
				}
			}()
			r.Gamma(bad[0], bad[1])
		}()
	}
}

func TestGammaDistMethods(t *testing.T) {
	g := GammaDist{Shape: 3, Scale: 10}
	if g.Mean() != 30 {
		t.Fatal("mean")
	}
	if g.String() != "gamma(3, 10)" {
		t.Fatalf("string %q", g.String())
	}
	if v := g.Sample(New(2)); v <= 0 {
		t.Fatal("sample")
	}
}

func TestMixtureMethods(t *testing.T) {
	m := Mixture{
		Components: []Dist{Constant{Value: 1}, Constant{Value: 3}},
		Weights:    []float64{1, 1},
	}
	if m.Mean() != 2 {
		t.Fatalf("mean %v", m.Mean())
	}
	r := New(3)
	ones := 0
	for i := 0; i < 10000; i++ {
		switch m.Sample(r) {
		case 1:
			ones++
		case 3:
		default:
			t.Fatal("sample outside components")
		}
	}
	if ones < 4500 || ones > 5500 {
		t.Fatalf("unbalanced mixture: %d ones", ones)
	}
	// Missing weights default to 1 in Mean.
	m2 := Mixture{Components: []Dist{Constant{Value: 4}, Constant{Value: 8}}, Weights: []float64{1}}
	if m2.Mean() != 6 {
		t.Fatalf("partial weights mean %v", m2.Mean())
	}
	if m.String() != "mixture(2)" {
		t.Fatalf("string %q", m.String())
	}
}

func TestVariatePanics(t *testing.T) {
	r := New(4)
	cases := []func(){
		func() { r.Exp(0) },
		func() { r.Exp(-1) },
		func() { r.Weibull(0, 1) },
		func() { r.Weibull(1, 0) },
		func() { r.Erlang(0, 5) },
		func() { LognormalParams(0, 1) },
		func() { LognormalParams(1, -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
