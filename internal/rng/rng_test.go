package rng

import (
	"math"
	"testing"
	"testing/quick"
)

const sampleN = 200000

func meanSD(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)-1))
	return mean, sd
}

func draw(t *testing.T, f func(r *Stream) float64) []float64 {
	t.Helper()
	r := New(12345)
	xs := make([]float64, sampleN)
	for i := range xs {
		xs[i] = f(r)
	}
	return xs
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed %d/1000 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	before := *parent
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	if parent.s != before.s {
		t.Fatal("Derive advanced the parent stream")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("substreams with distinct ids produced the same first draw")
	}
	// Deriving the same id twice must give the same stream.
	d1, d2 := parent.Derive(9), parent.Derive(9)
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatalf("re-derived substream diverged at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	xs := draw(t, func(r *Stream) float64 { return r.Float64() })
	mean, _ := meanSD(xs)
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMoments(t *testing.T) {
	const want = 267.0 // Table 2 Pd CPU request mean
	xs := draw(t, func(r *Stream) float64 { return r.Exp(want) })
	mean, sd := meanSD(xs)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("exp mean = %v, want ~%v", mean, want)
	}
	if math.Abs(sd-want)/want > 0.02 {
		t.Fatalf("exp sd = %v, want ~%v", sd, want)
	}
}

func TestNormalMoments(t *testing.T) {
	xs := draw(t, func(r *Stream) float64 { return r.Normal(10, 3) })
	mean, sd := meanSD(xs)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Fatalf("normal sd = %v, want ~3", sd)
	}
}

func TestLognormalMoments(t *testing.T) {
	// Table 2 application CPU request: lognormal(2213, 3034).
	xs := draw(t, func(r *Stream) float64 { return r.Lognormal(2213, 3034) })
	mean, sd := meanSD(xs)
	if math.Abs(mean-2213)/2213 > 0.03 {
		t.Fatalf("lognormal mean = %v, want ~2213", mean)
	}
	if math.Abs(sd-3034)/3034 > 0.06 {
		t.Fatalf("lognormal sd = %v, want ~3034", sd)
	}
}

func TestLognormalParamsRoundTrip(t *testing.T) {
	mu, sigma := LognormalParams(100, 50)
	gotMean := math.Exp(mu + sigma*sigma/2)
	gotVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	if math.Abs(gotMean-100) > 1e-9 {
		t.Fatalf("round-trip mean = %v", gotMean)
	}
	if math.Abs(math.Sqrt(gotVar)-50) > 1e-9 {
		t.Fatalf("round-trip sd = %v", math.Sqrt(gotVar))
	}
}

func TestWeibullMean(t *testing.T) {
	w := Weibull{Shape: 2, Scale: 100}
	xs := draw(t, func(r *Stream) float64 { return w.Sample(r) })
	mean, _ := meanSD(xs)
	want := w.Mean() // 100*Gamma(1.5) = 88.62...
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("weibull mean = %v, want ~%v", mean, want)
	}
	if math.Abs(want-88.6227) > 0.01 {
		t.Fatalf("weibull analytic mean = %v, want 88.6227", want)
	}
}

func TestErlangMoments(t *testing.T) {
	xs := draw(t, func(r *Stream) float64 { return r.Erlang(4, 100) })
	mean, sd := meanSD(xs)
	if math.Abs(mean-100) > 1.5 {
		t.Fatalf("erlang mean = %v, want ~100", mean)
	}
	want := 100.0 / 2 // sd = mean/sqrt(k)
	if math.Abs(sd-want) > 1.5 {
		t.Fatalf("erlang sd = %v, want ~%v", sd, want)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn bucket %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

// Property: all variates from positive-parameter distributions are positive.
func TestQuickVariatesPositive(t *testing.T) {
	f := func(seed uint64, meanSeed uint16) bool {
		mean := 1 + float64(meanSeed)
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Exp(mean) <= 0 {
				return false
			}
			if r.Lognormal(mean, mean/2) <= 0 {
				return false
			}
			if r.Weibull(1.5, mean) <= 0 {
				return false
			}
			if r.Erlang(3, mean) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Uniform(a, b) stays within [a, b) for a < b.
func TestQuickUniformRange(t *testing.T) {
	f := func(seed uint64, a float64, width uint16) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			return true // skip pathological inputs
		}
		b := a + 1 + float64(width)
		r := New(seed)
		for i := 0; i < 100; i++ {
			u := r.Uniform(a, b)
			if u < a || u >= b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shuffle produces a permutation (multiset preserved).
func TestQuickShufflePermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		xs := make([]int, m)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(m, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, m)
		for _, v := range xs {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistInterfaces(t *testing.T) {
	r := New(11)
	dists := []Dist{
		Constant{Value: 5},
		Exponential{MeanVal: 100},
		Lognormal{MeanVal: 2213, SD: 3034},
		Weibull{Shape: 1.2, Scale: 50},
		UniformDist{Low: 1, High: 9},
		Empirical{Values: []float64{1, 2, 3}},
	}
	for _, d := range dists {
		if d.String() == "" {
			t.Errorf("%T: empty String()", d)
		}
		v := d.Sample(r)
		if math.IsNaN(v) {
			t.Errorf("%s: NaN sample", d)
		}
		if d.Mean() < 0 {
			t.Errorf("%s: negative mean", d)
		}
	}
}

func TestEmpiricalDist(t *testing.T) {
	e := Empirical{Values: []float64{2, 4, 6}}
	if got := e.Mean(); got != 4 {
		t.Fatalf("empirical mean = %v, want 4", got)
	}
	r := New(2)
	for i := 0; i < 100; i++ {
		v := e.Sample(r)
		if v != 2 && v != 4 && v != 6 {
			t.Fatalf("empirical sample %v not in value set", v)
		}
	}
	var empty Empirical
	if empty.Mean() != 0 || empty.Sample(r) != 0 {
		t.Fatal("empty empirical should yield zeros")
	}
}

func TestConstantDist(t *testing.T) {
	c := Constant{Value: 7.5}
	if c.Sample(New(1)) != 7.5 || c.Mean() != 7.5 {
		t.Fatal("constant dist misbehaves")
	}
}

func TestGammaFunction(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 1}, {2, 1}, {3, 2}, {4, 6}, {5, 24},
		{0.5, math.Sqrt(math.Pi)},
		{1.5, math.Sqrt(math.Pi) / 2},
	}
	for _, c := range cases {
		if got := gamma(c.x); math.Abs(got-c.want)/c.want > 1e-10 {
			t.Errorf("gamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(99)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / 100000
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit rate %v", p)
	}
}

func BenchmarkExpVariate(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(267)
	}
}

func BenchmarkLognormalVariate(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Lognormal(2213, 3034)
	}
}
