// Package rng provides deterministic pseudo-random number streams and the
// random-variate generators needed by the ROCC simulation model: uniform,
// exponential, normal, lognormal (parameterized by mean and standard
// deviation, the form used in Table 2 of the paper), Weibull, Erlang, and
// empirical distributions.
//
// Every stream is seeded explicitly so simulation experiments are exactly
// reproducible, and independent substreams (one per stochastic process in the
// model, following common-random-numbers practice from Law & Kelton) are
// derived with a SplitMix64 seed sequence so that changing the number of
// processes in one part of a model does not perturb the draws seen elsewhere.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used both to seed xoshiro streams and to derive substream seeds.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream (xoshiro256**) with
// variate-generation methods. The zero value is not valid; use New or Derive.
type Stream struct {
	s [4]uint64

	// spare holds a cached standard-normal deviate from the polar method.
	spare    float64
	hasSpare bool
}

// New returns a stream seeded from seed. Distinct seeds give streams that
// are, for simulation purposes, independent.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// Derive returns a substream keyed by id. Substreams with distinct ids are
// independent of each other and of the parent; deriving does not advance the
// parent stream.
func (r *Stream) Derive(id uint64) *Stream {
	sm := r.s[0] ^ (r.s[2] * 0x9e3779b97f4a7c15)
	mix := splitMix64(&sm) ^ (id * 0xd1342543de82ef95)
	return New(mix)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// open returns a uniform variate in (0, 1), never exactly zero, suitable for
// logarithms in inversion methods.
func (r *Stream) open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Uniform returns a variate uniform on [a, b).
func (r *Stream) Uniform(a, b float64) float64 {
	return a + (b-a)*r.Float64()
}

// Exp returns an exponential variate with the given mean (inter-arrival form
// used throughout Table 2). It panics if mean <= 0.
func (r *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(r.open())
}

// Normal returns a normal variate with mean mu and standard deviation sigma
// using the Marsaglia polar method.
func (r *Stream) Normal(mu, sigma float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mu + sigma*r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return mu + sigma*u*f
	}
}

// LognormalParams converts a desired mean and standard deviation of a
// lognormal random variable into the (mu, sigma) parameters of the
// underlying normal distribution.
func LognormalParams(mean, sd float64) (mu, sigma float64) {
	if mean <= 0 {
		panic("rng: lognormal mean must be positive")
	}
	if sd < 0 {
		panic("rng: lognormal sd must be non-negative")
	}
	cv2 := (sd / mean) * (sd / mean)
	sigma2 := math.Log(1 + cv2)
	mu = math.Log(mean) - sigma2/2
	return mu, math.Sqrt(sigma2)
}

// Lognormal returns a lognormal variate specified by the mean and standard
// deviation of the variate itself (not of its logarithm). This matches the
// "lognormal(a, b)" parameterization of Table 2 in the paper.
func (r *Stream) Lognormal(mean, sd float64) float64 {
	mu, sigma := LognormalParams(mean, sd)
	return math.Exp(r.Normal(mu, sigma))
}

// Weibull returns a Weibull variate with the given shape and scale via
// inversion.
func (r *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull parameters must be positive")
	}
	return scale * math.Pow(-math.Log(r.open()), 1/shape)
}

// Erlang returns an Erlang-k variate with the given overall mean
// (the sum of k exponentials each with mean mean/k).
func (r *Stream) Erlang(k int, mean float64) float64 {
	if k <= 0 {
		panic("rng: Erlang with non-positive k")
	}
	prod := 1.0
	for i := 0; i < k; i++ {
		prod *= r.open()
	}
	return -(mean / float64(k)) * math.Log(prod)
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
