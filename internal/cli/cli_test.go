package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestSharedFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	j, o, p, s := JSON(fs), Out(fs), Parallel(fs), Seed(fs)
	if err := fs.Parse([]string{"-json", "-out", "x.json", "-parallel", "4", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if !*j || *o != "x.json" || *p != 4 || *s != 7 {
		t.Fatalf("parsed json=%v out=%q parallel=%d seed=%d", *j, *o, *p, *s)
	}
}

func TestSharedFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	j, o, p, s := JSON(fs), Out(fs), Parallel(fs), Seed(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *j || *o != "" || *p != 0 || *s != 1 {
		t.Fatalf("defaults json=%v out=%q parallel=%d seed=%d", *j, *o, *p, *s)
	}
}

func TestOutput(t *testing.T) {
	w, err := Output("")
	if err != nil {
		t.Fatal(err)
	}
	if w != (nopCloser{os.Stdout}) {
		t.Error("empty path must yield stdout")
	}
	if err := w.Close(); err != nil {
		t.Errorf("stdout close: %v", err)
	}

	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := Output(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "x" {
		t.Errorf("file content %q", b)
	}
}
