package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSharedFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	j, o, p, s := JSON(fs), Out(fs), Parallel(fs), Seed(fs)
	if err := fs.Parse([]string{"-json", "-out", "x.json", "-parallel", "4", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	if !*j || *o != "x.json" || *p != 4 || *s != 7 {
		t.Fatalf("parsed json=%v out=%q parallel=%d seed=%d", *j, *o, *p, *s)
	}
}

func TestSharedFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	j, o, p, s := JSON(fs), Out(fs), Parallel(fs), Seed(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *j || *o != "" || *p != 0 || *s != 1 {
		t.Fatalf("defaults json=%v out=%q parallel=%d seed=%d", *j, *o, *p, *s)
	}
}

// Negative -parallel and -seed underflow/overflow must be usage errors
// at parse time, not silent fall-through to defaults (or wrapped values).
func TestSharedFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		check   func(p int, s uint64) bool
	}{
		{"negative parallel", []string{"-parallel", "-1"}, true, nil},
		{"very negative parallel", []string{"-parallel", "-64"}, true, nil},
		{"non-integer parallel", []string{"-parallel", "two"}, true, nil},
		{"float parallel", []string{"-parallel", "1.5"}, true, nil},
		{"zero parallel ok", []string{"-parallel", "0"}, false, func(p int, _ uint64) bool { return p == 0 },
		},
		{"positive parallel ok", []string{"-parallel", "16"}, false, func(p int, _ uint64) bool { return p == 16 },
		},
		{"seed underflow", []string{"-seed", "-1"}, true, nil},
		{"seed deep underflow", []string{"-seed", "-18446744073709551615"}, true, nil},
		{"seed overflow", []string{"-seed", "18446744073709551616"}, true, nil},
		{"seed not a number", []string{"-seed", "abc"}, true, nil},
		{"seed zero ok", []string{"-seed", "0"}, false, func(_ int, s uint64) bool { return s == 0 },
		},
		{"seed max ok", []string{"-seed", "18446744073709551615"}, false, func(_ int, s uint64) bool { return s == 1<<64 - 1 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			p, s := Parallel(fs), Seed(fs)
			err := fs.Parse(tc.args)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Parse(%v) succeeded (parallel=%d seed=%d), want usage error", tc.args, *p, *s)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%v): %v", tc.args, err)
			}
			if !tc.check(*p, *s) {
				t.Errorf("Parse(%v): parallel=%d seed=%d", tc.args, *p, *s)
			}
		})
	}
}

// -http must reject garbage at parse time and accept the documented
// forms, including ":0" for an ephemeral port.
func TestHTTPFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		want    string
	}{
		{"default disabled", nil, false, ""},
		{"explicit empty disables", []string{"-http", ""}, false, ""},
		{"ephemeral port", []string{"-http", ":0"}, false, ":0"},
		{"port only", []string{"-http", ":9090"}, false, ":9090"},
		{"host and port", []string{"-http", "127.0.0.1:8080"}, false, "127.0.0.1:8080"},
		{"ipv6", []string{"-http", "[::1]:8080"}, false, "[::1]:8080"},
		{"no port", []string{"-http", "localhost"}, true, ""},
		{"negative port", []string{"-http", ":-1"}, true, ""},
		{"port overflow", []string{"-http", ":70000"}, true, ""},
		{"non-numeric port", []string{"-http", ":http"}, true, ""},
		{"garbage", []string{"-http", "not an address"}, true, ""},
		{"url not address", []string{"-http", "http://x:1"}, true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			a := HTTP(fs)
			err := fs.Parse(tc.args)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Parse(%v) accepted %q", tc.args, *a)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%v): %v", tc.args, err)
			}
			if *a != tc.want {
				t.Errorf("Parse(%v) = %q, want %q", tc.args, *a, tc.want)
			}
		})
	}
}

// The registered defaults must render in usage output despite the custom
// flag.Value types.
func TestSharedFlagUsageDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var buf strings.Builder
	fs.SetOutput(&buf)
	Parallel(fs)
	Seed(fs)
	fs.PrintDefaults()
	if out := buf.String(); !strings.Contains(out, "default 1") {
		t.Errorf("usage output missing seed default:\n%s", out)
	}
}

func TestOutput(t *testing.T) {
	w, err := Output("")
	if err != nil {
		t.Fatal(err)
	}
	if w != (nopCloser{os.Stdout}) {
		t.Error("empty path must yield stdout")
	}
	if err := w.Close(); err != nil {
		t.Errorf("stdout close: %v", err)
	}

	path := filepath.Join(t.TempDir(), "out.txt")
	f, err := Output(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "x" {
		t.Errorf("file content %q", b)
	}
}
