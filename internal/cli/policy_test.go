package cli

import (
	"flag"
	"io"
	"strings"
	"testing"

	"rocc/internal/forward"
)

func newPolicyFS() (*flag.FlagSet, *PolicyValue) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs, Policy(fs)
}

func TestPolicyFlagParses(t *testing.T) {
	cases := []struct {
		arg  string
		want forward.StrategySpec
	}{
		{"cf", forward.StrategySpec{Policy: forward.CF, Batch: 1}},
		{"bf", forward.StrategySpec{Policy: forward.BF}},
		{"bf:16", forward.StrategySpec{Policy: forward.BF, Batch: 16}},
		{"abf", forward.StrategySpec{Policy: forward.BF, Adaptive: true}},
		{"abf:2.5", forward.StrategySpec{Policy: forward.BF, Adaptive: true, TargetMS: 2.5}},
	}
	for _, c := range cases {
		fs, v := newPolicyFS()
		if err := fs.Parse([]string{"-policy", c.arg}); err != nil {
			t.Errorf("-policy %s: %v", c.arg, err)
			continue
		}
		if !v.Given() {
			t.Errorf("-policy %s: Given() false", c.arg)
		}
		if v.Spec() != c.want {
			t.Errorf("-policy %s: spec %+v, want %+v", c.arg, v.Spec(), c.want)
		}
	}
}

func TestPolicyFlagNotGiven(t *testing.T) {
	fs, v := newPolicyFS()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if v.Given() {
		t.Fatal("Given() true without the flag")
	}
	// Apply must be a no-op when the flag was not given.
	p, batch := forward.CF, 99
	var strat forward.Strategy
	v.Apply(&p, &batch, &strat, 32)
	if p != forward.CF || batch != 99 || strat != nil {
		t.Fatalf("Apply without flag mutated state: %v %d %v", p, batch, strat)
	}
}

// Malformed specs are usage errors at flag-parse time, before any run
// starts, with the parser's descriptive message.
func TestPolicyFlagRejectsMalformed(t *testing.T) {
	cases := []struct{ arg, wantSub string }{
		{"bf:0", "batch size must be an integer >= 1"},
		{"bf:-1", "batch size must be an integer >= 1"},
		{"abf:-1", "latency budget must be a positive number"},
		{"abf:0", "latency budget must be a positive number"},
		{"cf:2", "cf takes no argument"},
		{"zz", "unknown policy spec"},
	}
	for _, c := range cases {
		fs, _ := newPolicyFS()
		err := fs.Parse([]string{"-policy", c.arg})
		if err == nil {
			t.Errorf("-policy %s: expected parse error", c.arg)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("-policy %s: error %q, want substring %q", c.arg, err, c.wantSub)
		}
	}
}

func TestPolicyApply(t *testing.T) {
	apply := func(arg string) (forward.Policy, int, forward.Strategy) {
		fs, v := newPolicyFS()
		if err := fs.Parse([]string{"-policy", arg}); err != nil {
			t.Fatalf("-policy %s: %v", arg, err)
		}
		p, batch := forward.CF, 0
		var strat forward.Strategy
		v.Apply(&p, &batch, &strat, 32)
		return p, batch, strat
	}

	if p, batch, strat := apply("cf"); p != forward.CF || batch != 1 || strat != nil {
		t.Fatalf("cf applied %v %d %v", p, batch, strat)
	}
	if p, batch, strat := apply("bf:16"); p != forward.BF || batch != 16 || strat != nil {
		t.Fatalf("bf:16 applied %v %d %v", p, batch, strat)
	}
	// Bare bf takes the tool's -batch default, keeping the legacy fields
	// (and golden outputs) engaged.
	if p, batch, strat := apply("bf"); p != forward.BF || batch != 32 || strat != nil {
		t.Fatalf("bf applied %v %d %v", p, batch, strat)
	}
	// Adaptive installs a Strategy rather than the legacy fields.
	p, _, strat := apply("abf")
	if p != forward.BF || strat == nil {
		t.Fatalf("abf applied %v strategy %v", p, strat)
	}
	if strat.String() != "abf" {
		t.Fatalf("abf strategy renders %q", strat.String())
	}
	if _, _, strat := apply("abf:1.5"); strat == nil || strat.String() != "abf:1.5" {
		t.Fatalf("abf:1.5 strategy %v", strat)
	}
}

func TestPolicyFlagStringRendersSpec(t *testing.T) {
	fs, v := newPolicyFS()
	if v.String() != "" {
		t.Fatalf("zero value String %q", v.String())
	}
	if err := fs.Parse([]string{"-policy", "BF:8"}); err != nil {
		t.Fatal(err)
	}
	if v.String() != "bf:8" {
		t.Fatalf("String %q, want bf:8", v.String())
	}
}
