// Package cli defines the flags every rocc command spells identically —
// -json, -out, -parallel, -seed — so the tools compose predictably in
// scripts. Each helper registers the flag with the shared name, default,
// and doc string and returns the bound value.
package cli

import (
	"flag"
	"io"
	"os"
)

// JSON registers -json: machine-readable output instead of text tables.
func JSON(fs *flag.FlagSet) *bool {
	return fs.Bool("json", false, "emit machine-readable JSON instead of text tables")
}

// Out registers -out: the output destination file.
func Out(fs *flag.FlagSet) *string {
	return fs.String("out", "", "write output to this file (default stdout)")
}

// Parallel registers -parallel: the worker-pool size shared by every
// replication/sweep fan-out. Output is order-preserved, so results are
// byte-identical at any setting.
func Parallel(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "worker pool size (0 = one per core, 1 = serial); output is byte-identical at any setting")
}

// Seed registers -seed: the master random seed all model seeds derive
// from.
func Seed(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 1, "master random seed")
}

// nopCloser wraps stdout so Output callers can defer Close uniformly.
type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// Output opens the -out destination: the named file, or stdout when the
// path is empty.
func Output(path string) (io.WriteCloser, error) {
	if path == "" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}
