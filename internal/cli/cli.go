// Package cli defines the flags every rocc command spells identically —
// -json, -out, -parallel, -seed — so the tools compose predictably in
// scripts. Each helper registers the flag with the shared name, default,
// and doc string and returns the bound value.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"

	"rocc/internal/forward"
)

// JSON registers -json: machine-readable output instead of text tables.
func JSON(fs *flag.FlagSet) *bool {
	return fs.Bool("json", false, "emit machine-readable JSON instead of text tables")
}

// Out registers -out: the output destination file.
func Out(fs *flag.FlagSet) *string {
	return fs.String("out", "", "write output to this file (default stdout)")
}

// Parallel registers -parallel: the worker-pool size shared by every
// replication/sweep fan-out. Output is order-preserved, so results are
// byte-identical at any setting. Negative values are rejected at parse
// time with a usage error — a negative pool size used to fall silently
// through to the one-per-core default.
func Parallel(fs *flag.FlagSet) *int {
	p := new(int)
	fs.Var(parallelValue{p}, "parallel", "worker pool size (0 = one per core, 1 = serial); output is byte-identical at any setting")
	return p
}

// parallelValue validates -parallel at parse time.
type parallelValue struct{ p *int }

func (v parallelValue) String() string {
	if v.p == nil {
		return "0"
	}
	return strconv.Itoa(*v.p)
}

func (v parallelValue) Set(s string) error {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return fmt.Errorf("must be an integer, got %q", s)
	}
	if n < 0 {
		return fmt.Errorf("must be >= 0 (0 = one worker per core), got %d", n)
	}
	*v.p = n
	return nil
}

// Seed registers -seed: the master random seed all model seeds derive
// from. Negative inputs (which would underflow the unsigned seed space)
// and values past 2^64-1 are rejected at parse time with a usage error.
func Seed(fs *flag.FlagSet) *uint64 {
	s := new(uint64)
	*s = 1
	fs.Var(seedValue{s}, "seed", "master random seed")
	return s
}

// seedValue validates -seed at parse time.
type seedValue struct{ s *uint64 }

func (v seedValue) String() string {
	if v.s == nil {
		return "0"
	}
	return strconv.FormatUint(*v.s, 10)
}

func (v seedValue) Set(raw string) error {
	s := strings.TrimSpace(raw)
	if strings.HasPrefix(s, "-") {
		return fmt.Errorf("must be non-negative (seeds are unsigned 64-bit integers), got %q", raw)
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return fmt.Errorf("must be an unsigned 64-bit integer, got %q", raw)
	}
	*v.s = n
	return nil
}

// HTTP registers -http: the listen address for the live monitoring
// endpoint (/metrics, /healthz, /progress, /debug/pprof/). Empty (the
// default) disables the server; ":0" binds an ephemeral port — callers
// should log the bound address live.Server.Start reports. Malformed
// addresses are rejected at parse time with a usage error instead of
// surfacing as a confusing bind failure mid-run.
func HTTP(fs *flag.FlagSet) *string {
	a := new(string)
	fs.Var(httpValue{a}, "http",
		"serve live metrics/progress/pprof on this address (e.g. :9090; :0 picks a free port; empty = disabled)")
	return a
}

// httpValue validates -http at parse time.
type httpValue struct{ a *string }

func (v httpValue) String() string {
	if v.a == nil {
		return ""
	}
	return *v.a
}

func (v httpValue) Set(raw string) error {
	s := strings.TrimSpace(raw)
	if s == "" {
		// Explicit -http="" is an explicit disable.
		*v.a = ""
		return nil
	}
	host, port, err := net.SplitHostPort(s)
	if err != nil {
		return fmt.Errorf("must be host:port or :port (use :0 for a free port), got %q", raw)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n < 0 || n > 65535 {
		return fmt.Errorf("port must be an integer in 0-65535, got %q", port)
	}
	if strings.ContainsAny(host, " \t/") {
		return fmt.Errorf("host %q is not a valid hostname or IP", host)
	}
	*v.a = s
	return nil
}

// Policy registers -policy: the forwarding-strategy spec shared by
// roccsim, roccbench, and roccfault. Malformed specs (unknown kinds,
// bf:0, abf:-1) are rejected at parse time with a usage error. The
// default is the zero spec, which callers treat as "flag not given"
// (Given reports false).
func Policy(fs *flag.FlagSet) *PolicyValue {
	v := new(PolicyValue)
	fs.Var(v, "policy",
		"forwarding strategy: cf, bf (tool's batch default), bf:<n>, abf, or abf:<latency ms>")
	return v
}

// PolicyValue is the parsed -policy flag.
type PolicyValue struct {
	spec  forward.StrategySpec
	given bool
}

// String implements flag.Value.
func (v *PolicyValue) String() string {
	if v == nil || !v.given {
		return ""
	}
	return v.spec.String()
}

// Set implements flag.Value, validating the spec at parse time.
func (v *PolicyValue) Set(raw string) error {
	spec, err := forward.ParseStrategySpec(raw)
	if err != nil {
		return errors.New(strings.TrimPrefix(err.Error(), "forward: "))
	}
	v.spec = spec
	v.given = true
	return nil
}

// Given reports whether -policy appeared on the command line.
func (v *PolicyValue) Given() bool { return v.given }

// Spec returns the parsed strategy spec (the zero spec if not given).
func (v *PolicyValue) Spec() forward.StrategySpec { return v.spec }

// Apply writes the spec onto a core-style destination: an adaptive spec
// installs the strategy, a fixed spec sets the legacy Policy/BatchSize
// fields (so legacy paths — and their golden outputs — stay engaged for
// cf/bf). defaultBatch supplies the tool's -batch default for bare "bf".
func (v *PolicyValue) Apply(p *forward.Policy, batch *int, strategy *forward.Strategy, defaultBatch int) {
	if !v.given {
		return
	}
	switch {
	case v.spec.Adaptive:
		*p = forward.BF
		*strategy = v.spec.NewStrategy(defaultBatch)
	case v.spec.Policy == forward.CF:
		*p = forward.CF
		*batch = 1
	default:
		*p = forward.BF
		if v.spec.Batch > 0 {
			*batch = v.spec.Batch
		} else if defaultBatch > 0 {
			*batch = defaultBatch
		}
	}
}

// nopCloser wraps stdout so Output callers can defer Close uniformly.
type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// Output opens the -out destination: the named file, or stdout when the
// path is empty.
func Output(path string) (io.WriteCloser, error) {
	if path == "" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}
