package obs

import (
	"fmt"
	"io"
	"strings"
)

// Level is a log severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel inverts String (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger writes structured key=value run logs:
//
//	level=info t_us=1234.5 msg="run started" nodes=8
//
// A nil *Logger discards everything, so call sites need no guards. The
// simulation clock, when set, stamps each line with simulated time.
type Logger struct {
	w     io.Writer
	min   Level
	clock func() float64
}

// NewLogger returns a logger writing lines at or above min to w. A nil w
// returns a nil logger (all methods are nil-safe no-ops).
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w, min: min}
}

// SetClock attaches a simulated-time source; each line gains a t_us field.
func (l *Logger) SetClock(fn func() float64) {
	if l != nil {
		l.clock = fn
	}
}

// Enabled reports whether a line at level would be written.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

// Log writes one line: level, optional t_us, the message, then key=value
// pairs from alternating kv entries (a trailing odd key gets value "?").
// Values format with %v; strings containing spaces or quotes are quoted.
func (l *Logger) Log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level.String())
	if l.clock != nil {
		fmt.Fprintf(&b, " t_us=%.1f", l.clock())
	}
	b.WriteString(" msg=")
	b.WriteString(quoteVal(msg))
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprintf("%v", kv[i])
		val := "?"
		if i+1 < len(kv) {
			val = fmt.Sprintf("%v", kv[i+1])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quoteVal(val))
	}
	b.WriteByte('\n')
	io.WriteString(l.w, b.String())
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.Log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.Log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.Log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.Log(LevelError, msg, kv...) }

// quoteVal quotes a value when it would break key=value tokenization.
func quoteVal(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
