package obs

// AtomicCounter is a goroutine-safe monotonic counter. Since Counter
// itself became atomic (so the live exporter can scrape a running
// simulation), the two types are one and the same; the alias survives
// for the layers that adopted AtomicCounter when it was distinct — the
// distributed sweep driver's slot goroutines, retry timers, and
// local-fallback pool.
type AtomicCounter = Counter

// SweepMetrics counts the fault-handling actions of a distributed sweep
// (internal/dist): how often shards were retried, speculatively
// re-dispatched, or drained through the local fallback, and how the
// worker fleet fared. None of these counters affect sweep output — the
// merged results are byte-identical whatever they read — so they are the
// observability surface for judging a run's health.
type SweepMetrics struct {
	Dispatched     AtomicCounter // shard attempts handed to workers (first attempts)
	Completed      AtomicCounter // shards completed (first completion only)
	Retries        AtomicCounter // shards requeued for another attempt after a failure
	Redispatches   AtomicCounter // speculative duplicate dispatches of straggling shards
	Duplicates     AtomicCounter // completions discarded because the shard was already done
	Timeouts       AtomicCounter // attempts killed at the per-shard deadline
	WorkerFailures AtomicCounter // attempts that returned a worker/transport error
	WorkerRestarts AtomicCounter // replacement workers started after a failure
	Quarantines    AtomicCounter // worker slots retired after repeated failures
	LocalShards    AtomicCounter // shards drained through the local fallback
}

// NewSweepMetrics returns a named sweep-metric registry.
func NewSweepMetrics() *SweepMetrics {
	m := &SweepMetrics{}
	for name, c := range map[string]*AtomicCounter{
		"dispatched":      &m.Dispatched,
		"completed":       &m.Completed,
		"retries":         &m.Retries,
		"redispatches":    &m.Redispatches,
		"duplicates":      &m.Duplicates,
		"timeouts":        &m.Timeouts,
		"worker_failures": &m.WorkerFailures,
		"worker_restarts": &m.WorkerRestarts,
		"quarantines":     &m.Quarantines,
		"local_shards":    &m.LocalShards,
	} {
		c.Name = name
	}
	return m
}

// Counters returns the registry's counters in a stable order.
func (m *SweepMetrics) Counters() []*AtomicCounter {
	return []*AtomicCounter{
		&m.Dispatched, &m.Completed, &m.Retries, &m.Redispatches,
		&m.Duplicates, &m.Timeouts, &m.WorkerFailures, &m.WorkerRestarts,
		&m.Quarantines, &m.LocalShards,
	}
}
