package obs

import (
	"math"
	"testing"

	"rocc/internal/des"
)

func TestHistogramEmptyAndExtremes(t *testing.T) {
	h := NewHistogram("h", []float64{10, 20, 30})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(15)
	if got := h.Quantile(0); got != 15 {
		t.Fatalf("p0 = %v, want the minimum 15", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Fatalf("p100 = %v, want the maximum 15", got)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
}

func TestHistogramSingleObservationQuantiles(t *testing.T) {
	// With one observation every quantile collapses to that value: the
	// bucket range is clamped to [min, max] = [15, 15].
	h := NewHistogram("h", []float64{10, 20, 30})
	h.Observe(15)
	for _, p := range []float64{0.01, 0.5, 0.95, 0.99} {
		if got := h.Quantile(p); got != 15 {
			t.Fatalf("Quantile(%v) = %v, want 15", p, got)
		}
	}
}

func TestHistogramLinearInterpolationWithinBucket(t *testing.T) {
	// 100 observations uniformly filling the (0, 100] bucket region:
	// clamped bounds are [min, max] = [1, 100], and with all mass in one
	// bucket the p-quantile interpolates linearly across it.
	h := NewHistogram("h", []float64{100, 200})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	// rank(p=0.5) = 50 of 100 -> lo + 0.5*(hi-lo) = 1 + 49.5 = 50.5
	if got, want := h.Quantile(0.5), 50.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// rank(p=0.95) = 95 -> 1 + 0.95*99 = 95.05
	if got, want := h.Quantile(0.95), 95.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p95 = %v, want %v", got, want)
	}
}

func TestHistogramInterpolationAcrossBuckets(t *testing.T) {
	// 10 observations in (0,10], 90 in (10,100]: p50 has rank 50, which
	// lands 40/90 of the way through the second bucket [10, 100].
	h := NewHistogram("h", []float64{10, 100})
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(float64(11 + i%89))
	}
	want := 10 + (50.0-10.0)/90.0*(99.0-10.0) // hi clamped to max = 99
	if got := h.Quantile(0.5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// Quantiles are monotone in p.
	prev := math.Inf(-1)
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("quantiles not monotone: p=%v gave %v after %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	// All mass above the last bound: the overflow bucket's range clamps
	// to [min, max] of the observed values.
	h := NewHistogram("h", []float64{10})
	h.Observe(50)
	h.Observe(150)
	if got := h.Quantile(0.99); got > 150 || got < 50 {
		t.Fatalf("overflow p99 = %v, want within [50, 150]", got)
	}
	if got := h.Max(); got != 150 {
		t.Fatalf("max = %v, want 150", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 2, 4)
	want := []float64{100, 200, 400, 800}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestMetricsResetClearsEverything(t *testing.T) {
	m := NewMetrics()
	m.Generated.Add(5)
	m.Latency.Observe(1000)
	ser := &Series{Name: "s", T: []float64{1}, V: []float64{2}}
	m.series = append(m.series, ser)
	m.Reset()
	if m.Generated.Value() != 0 {
		t.Fatal("counter survived Reset")
	}
	if m.Latency.Count() != 0 {
		t.Fatal("histogram survived Reset")
	}
	if len(ser.T) != 0 || len(ser.V) != 0 {
		t.Fatal("series data survived Reset")
	}
}

func TestSamplerTicksAndStops(t *testing.T) {
	sim := des.New()
	s := NewSampler(sim, 10)
	calls := 0
	ser := s.Probe(nil, "p", func(t float64) float64 { calls++; return t })
	s.Start()
	sim.Run(35)
	if calls != 3 {
		t.Fatalf("probe ran %d times in 35us at interval 10, want 3", calls)
	}
	if len(ser.T) != 3 || ser.T[0] != 10 || ser.V[2] != 30 {
		t.Fatalf("series = %+v, want ticks at 10,20,30 echoing time", ser)
	}
	s.Stop()
	sim.Run(100)
	if calls != 3 {
		t.Fatalf("sampler kept ticking after Stop: %d calls", calls)
	}
}
