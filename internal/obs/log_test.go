package obs

import (
	"strings"
	"testing"
)

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("run started", "nodes", 8, "arch", "now")
	l.Warn("pipe full", "node", 3)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug line written at info level")
	}
	for _, want := range []string{
		"level=info msg=\"run started\" nodes=8 arch=now\n",
		"level=warn msg=\"pipe full\" node=3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLoggerQuotingAndOddPairs(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelDebug)
	l.Info("m", "path", "a b", "empty", "", "dangling")
	out := buf.String()
	for _, want := range []string{`path="a b"`, `empty=""`, "dangling=?"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger // also what NewLogger(nil, ...) returns
	if NewLogger(nil, LevelInfo) != nil {
		t.Fatal("NewLogger(nil) must return nil")
	}
	l.Info("no panic", "k", "v")
	l.SetClock(func() float64 { return 0 })
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestLoggerSimClock(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelDebug)
	l.SetClock(func() float64 { return 1234.5 })
	l.Debug("tick")
	if !strings.Contains(buf.String(), "t_us=1234.5") {
		t.Fatalf("missing sim-time stamp: %s", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
