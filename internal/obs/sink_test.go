package obs

import (
	"bytes"
	"strings"
	"testing"

	"rocc/internal/procs"
	"rocc/internal/resources"
	"rocc/internal/trace"
)

func TestTraceRecordsRoundTrip(t *testing.T) {
	s := NewTraceSink()
	s.addSpan(OccCPU, 0, procs.OwnerApp, 0, 100)
	s.addSpan(OccCPU, 1, procs.OwnerPd, 50, 30)
	s.addSpan(OccNet, 0, procs.OwnerPd, 80, 20)
	s.addSpan(OccCPU, 0, procs.OwnerMain, 200, 10)

	recs := s.TraceRecords()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].StartUS < recs[i-1].StartUS {
			t.Fatal("records not sorted by start time")
		}
	}
	an, err := trace.Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := an.TotalsFor(trace.ProcApplication)
	if app.CPUTimeUS != 100 {
		t.Fatalf("application CPU total %v, want 100", app.CPUTimeUS)
	}
	pd, _ := an.TotalsFor(trace.ProcPd)
	if pd.CPUTimeUS != 30 || pd.NetTimeUS != 20 {
		t.Fatalf("pd totals cpu=%v net=%v, want 30/20", pd.CPUTimeUS, pd.NetTimeUS)
	}
	// Per-unit PIDs: pd span on CPU 1 gets base 200 + unit 1.
	if len(pd.PIDs) != 2 { // 201 (cpu 1) and 200 (net, unit 0)
		t.Fatalf("pd PIDs = %v, want two (per-unit)", pd.PIDs)
	}

	// The text format accepts the export unchanged.
	var buf bytes.Buffer
	if err := trace.WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round-trip lost records: %d -> %d", len(recs), len(back))
	}
}

func TestWriteChromeValidates(t *testing.T) {
	c := NewCollector(true, false)
	c.Occupancy(OccCPU, 0, procs.OwnerApp, 0, 100)
	c.Occupancy(OccNet, 0, procs.OwnerPd, 100, 25)
	sample := resources.Sample{GenTime: 10, Node: 0, Proc: 2, Seq: 7}
	c.SampleGenerated(10, sample, false)
	c.PipePut(3, 10, sample, 1)
	c.PipeGet(3, 40, sample, 0)
	c.SampleDelivered(120, sample, 110)
	c.DaemonCrashed(1, 130, 4)
	c.DaemonRestored(1, 150)

	var buf bytes.Buffer
	if err := c.Sink.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	n, err := ValidateChrome(strings.NewReader(out))
	if err != nil {
		t.Fatalf("export does not validate: %v\n%s", err, out)
	}
	// 2 spans + 6 lifecycle events + metadata (cpu 0, network, pipe 3,
	// node-0 samples, node-1 samples) + the sample's flow start and end.
	if want := 2 + 6 + 5 + 2; n != want {
		t.Fatalf("validated %d events, want %d\n%s", n, want, out)
	}
	for _, needle := range []string{`"ph":"X"`, `"ph":"i"`, `"ph":"M"`, "sample p2 #7", "daemon-crash",
		`"ph":"s"`, `"ph":"f"`, `"id":"n0.p2.s7"`, `"bp":"e"`} {
		if !strings.Contains(out, needle) {
			t.Fatalf("export missing %q:\n%s", needle, out)
		}
	}
}

// TestWriteChromeFlowPath drives a full multi-hop sample path — generate,
// pipe, forward, relay arrival, re-forward, delivery — plus a lost sample
// and an injected duplicate delivery, and checks the flow-event contract:
// one "s" per generated sample, "t" steps along the path, exactly one "f"
// even when the sample is delivered twice, and no flow events at all for
// a sample whose generation predates the trace (warmup truncation).
func TestWriteChromeFlowPath(t *testing.T) {
	c := NewCollector(true, false)
	a := resources.Sample{GenTime: 10, Node: 0, Proc: 0, Seq: 1}
	b := resources.Sample{GenTime: 12, Node: 0, Proc: 0, Seq: 2}
	ghost := resources.Sample{GenTime: 1, Node: 0, Proc: 0, Seq: 0} // not generated in-trace

	c.SampleGenerated(10, a, false)
	c.SampleGenerated(12, b, false)
	c.PipePut(0, 10, a, 1)
	c.PipePut(0, 12, b, 2)
	c.PipeGet(0, 20, a, 1)
	c.PipeGet(0, 20, b, 0)
	batch := []resources.Sample{a, b, ghost}
	c.MessageForwarded(0, 25, batch, 1)
	c.MessageReceived(1, 30, batch, 1)
	c.MessageForwarded(1, 33, batch, 2)
	c.SampleDelivered(40, a, 30)
	c.SampleDelivered(41, a, 31) // injected duplicate: no second flow end
	c.SampleLost(1, 41, b, procs.LossCrash)

	var buf bytes.Buffer
	if err := c.Sink.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := ValidateChrome(strings.NewReader(out)); err != nil {
		t.Fatalf("flow export does not validate: %v\n%s", err, out)
	}
	if got, want := strings.Count(out, `"ph":"s"`), 2; got != want {
		t.Fatalf("%d flow starts, want %d\n%s", got, want, out)
	}
	if got, want := strings.Count(out, `"ph":"f"`), 2; got != want {
		t.Fatalf("%d flow ends, want %d (one per sample, duplicates excluded)\n%s", got, want, out)
	}
	// Each sample's path: forwarded, arrived, re-forwarded = 3 steps.
	if got, want := strings.Count(out, `"ph":"t"`), 6; got != want {
		t.Fatalf("%d flow steps, want %d\n%s", got, want, out)
	}
	if strings.Contains(out, `"id":"n0.p0.s0"`) {
		t.Fatalf("ghost sample (generated pre-trace) got flow events:\n%s", out)
	}
	if !strings.Contains(out, "sample-lost") {
		t.Fatalf("lost sample not in export:\n%s", out)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"not JSON":                "perfetto",
		"empty array":             "[]",
		"unknown phase":           `[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]`,
		"negative time":           `[{"name":"x","ph":"X","ts":-5,"pid":1,"tid":1}]`,
		"unnamed event":           `[{"ph":"i","ts":0,"pid":1,"tid":1}]`,
		"flow start without id":   `[{"name":"x","ph":"s","ts":0,"pid":1,"tid":1}]`,
		"flow end without start":  `[{"name":"x","ph":"f","ts":0,"pid":1,"tid":1,"id":"a","cat":"c"}]`,
		"flow step without start": `[{"name":"x","ph":"t","ts":0,"pid":1,"tid":1,"id":"a","cat":"c"}]`,
		"flow cat mismatch": `[{"name":"x","ph":"s","ts":0,"pid":1,"tid":1,"id":"a","cat":"c1"},` +
			`{"name":"x","ph":"f","ts":1,"pid":1,"tid":1,"id":"a","cat":"c2"}]`,
		"duplicate flow start": `[{"name":"x","ph":"s","ts":0,"pid":1,"tid":1,"id":"a","cat":"c"},` +
			`{"name":"x","ph":"s","ts":1,"pid":1,"tid":1,"id":"a","cat":"c"}]`,
		"flow ends twice": `[{"name":"x","ph":"s","ts":0,"pid":1,"tid":1,"id":"a","cat":"c"},` +
			`{"name":"x","ph":"f","ts":1,"pid":1,"tid":1,"id":"a","cat":"c"},` +
			`{"name":"x","ph":"f","ts":2,"pid":1,"tid":1,"id":"a","cat":"c"}]`,
	} {
		if _, err := ValidateChrome(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func TestCollectorMetricsCounters(t *testing.T) {
	c := NewCollector(false, true)
	sample := resources.Sample{GenTime: 1, Node: 0, Proc: 0, Seq: 0}
	c.SampleGenerated(1, sample, true)
	c.PipeDropped(0, 2, sample, false)
	c.BatchCollected(0, 3, 8)
	c.MessageForwarded(0, 4, []resources.Sample{sample}, 1)
	c.MessageDelivered(5, 8, 1)
	c.SampleDelivered(5, sample, 4)
	c.SampleLost(0, 6, resources.Sample{Seq: 9}, procs.LossThinned)
	c.DaemonCrashed(0, 6, 2)
	c.MessageRetransmitted(0, 7, 1)
	m := c.Metrics
	for _, tc := range []struct {
		name string
		got  uint64
		want uint64
	}{
		{"generated", m.Generated.Value(), 1},
		{"blocked_puts", m.BlockedPuts.Value(), 1},
		{"dropped", m.Dropped.Value(), 1},
		{"batches", m.Batches.Value(), 1},
		{"forwards", m.Forwards.Value(), 1},
		{"messages", m.DeliveredMsgs.Value(), 1},
		{"delivered", m.Delivered.Value(), 1},
		{"crashes", m.Crashes.Value(), 1},
		{"retransmits", m.Retransmits.Value(), 1},
		{"lost", m.Lost.Value(), 1},
	} {
		if tc.got != tc.want {
			t.Errorf("%s = %d, want %d", tc.name, tc.got, tc.want)
		}
	}
	if m.Latency.Count() != 1 || m.Latency.Mean() != 4 {
		t.Errorf("latency histogram count=%d mean=%v, want 1/4", m.Latency.Count(), m.Latency.Mean())
	}
	// Trace half disabled: nothing recorded, nothing panics.
	if c.Sink != nil {
		t.Fatal("trace half should be nil")
	}
}

func TestResetAccountingClearsSink(t *testing.T) {
	c := NewCollector(true, true)
	c.Occupancy(OccCPU, 0, procs.OwnerApp, 0, 10)
	c.SampleGenerated(1, resources.Sample{}, false)
	c.Metrics.Generated.Add(1)
	c.ResetAccounting()
	if c.Sink.Len() != 0 {
		t.Fatal("sink survived ResetAccounting")
	}
	if c.Metrics.Generated.Value() != 0 {
		t.Fatal("metrics survived ResetAccounting")
	}
}
