// Package prov is the streaming per-sample provenance engine: it
// consumes the sample-lifecycle hook fan-out (obs.FlowObserver) and folds
// each sample's path through the instrumentation system into a per-stage
// dwell-time decomposition — where the paper's aggregate
// generation→delivery latency (Figure 16) actually accrues.
//
// # Stage state machine
//
// A sample's path visits fixed boundary instants: generation (genT), pipe
// admission (putT — later than genT only for a blocked writer), pipe
// drain (getT), first network hand-off (fwdT), then alternating arrivals
// and re-forwards at relay daemons, and finally delivery at the main
// process (devT). The engine folds those instants into six stages whose
// telescoping sum is exactly devT − genT, the model's measured latency:
//
//	pipe-wait       = (putT − genT) + (getT − maxPut)
//	batch-residency = maxPut − putT
//	daemon-service  = fwdT − getT
//	network-transit = Σ over legs (arrival − forward)
//	merge           = Σ over relays (re-forward − arrival)
//	main-receipt    = devT − last arrival (structurally 0: the model
//	                  measures latency at the receive instant)
//
// maxPut is the latest pipe-admission instant over the message's batch,
// captured at the first forward (hops == 1): the time a sample sits in
// the pipe waiting for its batch to fill is the price of the BF policy
// (batch-residency), while the remainder of the pipe dwell is queueing
// proper (pipe-wait).
//
// # Determinism and memory bound
//
// In-flight records live in a pooled free list keyed by the sample's
// (node, proc, seq) identity; a record is recycled the instant its sample
// is delivered, dropped, or lost, so memory is bounded by the in-flight
// high-water mark. All aggregation happens in simulation-event order —
// no map iteration ever feeds a float accumulation — so output is
// byte-deterministic at any worker count and event calendar. When
// provenance is disabled the engine does not exist and every hook site is
// one nil-check branch (pinned by the allocation tests).
//
// # Fault interactions
//
// Thinning, daemon crashes, link losses, and exhausted retransmission
// budgets all fire SampleLost, which closes the record without observing
// stages. Injected duplicates on unprotected links deliver the same
// sample twice: the first delivery closes the record; later deliveries
// (or losses) of an already-closed identity are tallied as duplicates so
// the engine's totals still reconcile exactly with the aggregate latency
// histogram, which observes every delivery.
package prov

import (
	"math"

	"rocc/internal/obs"
	"rocc/internal/procs"
	"rocc/internal/resources"
)

// Stage indexes one dwell-time stage of a sample's path.
type Stage int

const (
	// StagePipeWait: queueing in the application→daemon pipe (blocked-put
	// wait plus post-batch-complete drain wait).
	StagePipeWait Stage = iota
	// StageBatchResidency: waiting in the pipe for the forwarding batch to
	// fill — the BF policy's latency price.
	StageBatchResidency
	// StageDaemonService: daemon CPU service between drain and network
	// hand-off (collection plus the forwarding system call).
	StageDaemonService
	// StageNetworkTransit: total network occupancy over all hops.
	StageNetworkTransit
	// StageMerge: relay-daemon merge service in tree forwarding.
	StageMerge
	// StageMainReceipt: delivery instant minus final network arrival
	// (structurally zero; kept so the decomposition is explicit).
	StageMainReceipt

	// NumStages is the number of stages.
	NumStages
)

// String returns the stage's kebab-case label.
func (s Stage) String() string {
	switch s {
	case StagePipeWait:
		return "pipe-wait"
	case StageBatchResidency:
		return "batch-residency"
	case StageDaemonService:
		return "daemon-service"
	case StageNetworkTransit:
		return "network-transit"
	case StageMerge:
		return "merge"
	case StageMainReceipt:
		return "main-receipt"
	default:
		return "unknown"
	}
}

// metricName returns the stage's OpenMetrics-safe histogram name.
func (s Stage) metricName() string {
	switch s {
	case StagePipeWait:
		return "latency_stage_pipe_wait_us"
	case StageBatchResidency:
		return "latency_stage_batch_residency_us"
	case StageDaemonService:
		return "latency_stage_daemon_service_us"
	case StageNetworkTransit:
		return "latency_stage_network_transit_us"
	case StageMerge:
		return "latency_stage_merge_us"
	default:
		return "latency_stage_main_receipt_us"
	}
}

// key is a sample's globally unique identity (Seq never resets).
type key struct{ node, proc, seq int }

// record is one in-flight sample's provenance state. Records are pooled:
// the free list recycles them at close, so steady state allocates only
// when the in-flight population reaches a new high-water mark.
type record struct {
	genT   float64
	putT   float64
	getT   float64
	maxPut float64 // latest putT over the forwarded batch (set at hops==1)
	fwdT   float64 // first network hand-off
	lastT  float64 // latest path boundary (for network/merge legs)
	net    float64 // accumulated network-transit dwell
	merge  float64 // accumulated relay-merge dwell

	// hops and inTransit gate the leg accumulators against duplicate
	// copies of the same message (injected dups share the sample's
	// identity): an arrival only closes a network leg when the record
	// believes the sample is in transit at that depth, and a relay
	// re-forward only closes a merge leg at the next depth.
	hops      int
	inTransit bool
	hasPut    bool
	hasGet    bool
	hasFwd    bool
}

// StageSummary is one stage's aggregate over all delivered samples.
type StageSummary struct {
	// Stage is the kebab-case stage label.
	Stage string
	// MeanUS/P50US/P95US/P99US summarize the stage's dwell distribution
	// in microseconds (quantiles interpolated from the histogram).
	MeanUS float64
	P50US  float64
	P95US  float64
	P99US  float64
	// SumUS is the stage's exact total dwell over all delivered samples.
	SumUS float64
	// SharePct is SumUS as a percentage of the total across stages.
	SharePct float64
}

// Engine is the provenance engine. It implements obs.FlowObserver; wire
// it as Collector.Flow. Not safe for concurrent use — it is fed from the
// single simulation goroutine, like the trace sink.
type Engine struct {
	recs map[key]*record
	free []*record

	hists [NumStages]*obs.Histogram
	sums  [NumStages]float64

	// Counters over the measured window (Reset clears them at the warmup
	// boundary; in-flight records survive, mirroring the model's latency
	// accounting, which measures carryover samples from generation).
	generated    uint64
	delivered    uint64
	dropped      uint64
	lost         [4]uint64 // by procs.LossReason
	dupDelivered uint64    // deliveries of an already-closed identity
	dupLost      uint64    // losses of an already-closed identity

	latencySumUS    float64 // Σ latency over first deliveries
	dupLatencySumUS float64 // Σ latency over duplicate deliveries
	maxCloseErrUS   float64 // max |Σ stages − latency| over first deliveries
}

// NewEngine returns an empty engine with one histogram per stage,
// spanning sub-microsecond dwell to ~12 minutes in half-octave buckets.
func NewEngine() *Engine {
	e := &Engine{recs: make(map[key]*record)}
	for i := Stage(0); i < NumStages; i++ {
		e.hists[i] = obs.NewHistogram(i.metricName(), obs.ExpBuckets(1, math.Sqrt2, 60))
	}
	return e
}

// get returns the identity's in-flight record, creating it from the pool
// on first sight. Hook ordering is not assumed: the pipe hooks fire
// before SampleGenerated in the application's write path, so any
// identity-bearing hook may be the first — genT is always available as
// s.GenTime.
func (e *Engine) get(s resources.Sample) *record {
	k := key{s.Node, s.Proc, s.Seq}
	if r, ok := e.recs[k]; ok {
		return r
	}
	var r *record
	if n := len(e.free); n > 0 {
		r = e.free[n-1]
		e.free = e.free[:n-1]
		*r = record{}
	} else {
		r = &record{}
	}
	r.genT = s.GenTime
	r.putT = s.GenTime
	r.maxPut = s.GenTime
	e.recs[k] = r
	return r
}

// close removes and recycles the identity's record; ok reports whether
// one was in flight.
func (e *Engine) close(s resources.Sample) (rec record, ok bool) {
	k := key{s.Node, s.Proc, s.Seq}
	r, found := e.recs[k]
	if !found {
		return record{}, false
	}
	rec = *r
	delete(e.recs, k)
	e.free = append(e.free, r)
	return rec, true
}

// SampleGenerated implements obs.FlowObserver.
func (e *Engine) SampleGenerated(t float64, s resources.Sample, blocked bool) {
	e.get(s)
	e.generated++
}

// PipePut implements obs.FlowObserver: pipe admission.
func (e *Engine) PipePut(t float64, s resources.Sample) {
	r := e.get(s)
	r.putT = t
	r.maxPut = t
	r.hasPut = true
}

// PipeGet implements obs.FlowObserver: pipe drain.
func (e *Engine) PipeGet(t float64, s resources.Sample) {
	r := e.get(s)
	r.getT = t
	r.hasGet = true
}

// PipeDropped implements obs.FlowObserver: the sample died at a full
// pipe; its record closes without stage observations.
func (e *Engine) PipeDropped(t float64, s resources.Sample) {
	if _, ok := e.close(s); ok {
		e.dropped++
	}
}

// BatchForwarded implements obs.FlowObserver. At the first hop the batch
// defines maxPut — the latest pipe admission across the message — which
// splits each member's pipe dwell into batch-residency and pipe-wait
// proper. Relay re-forwards close a merge leg.
func (e *Engine) BatchForwarded(node int, t float64, batch []resources.Sample, hops int) {
	if hops == 1 {
		maxPut := math.Inf(-1)
		for _, s := range batch {
			if r, ok := e.recs[key{s.Node, s.Proc, s.Seq}]; ok && r.putT > maxPut {
				maxPut = r.putT
			}
		}
		for _, s := range batch {
			r, ok := e.recs[key{s.Node, s.Proc, s.Seq}]
			if !ok {
				continue
			}
			if !r.hasGet {
				r.getT = t
			}
			if !r.hasFwd { // first forward wins (retransmits re-occupy the net, not the daemon)
				r.hasFwd = true
				r.fwdT = t
				if maxPut > r.maxPut {
					r.maxPut = maxPut
				}
				r.lastT = t
				r.hops = 1
				r.inTransit = true
			}
		}
		return
	}
	for _, s := range batch {
		r, ok := e.recs[key{s.Node, s.Proc, s.Seq}]
		if ok && r.hasFwd && !r.inTransit && hops == r.hops+1 {
			r.merge += t - r.lastT
			r.lastT = t
			r.hops = hops
			r.inTransit = true
		}
	}
}

// BatchArrived implements obs.FlowObserver: relay receipt closes one
// network leg.
func (e *Engine) BatchArrived(node int, t float64, batch []resources.Sample, hops int) {
	for _, s := range batch {
		r, ok := e.recs[key{s.Node, s.Proc, s.Seq}]
		if ok && r.hasFwd && r.inTransit && hops == r.hops {
			r.net += t - r.lastT
			r.lastT = t
			r.inTransit = false
		}
	}
}

// SampleDelivered implements obs.FlowObserver: the path is complete. The
// final network leg ends at the delivery instant; stages are observed and
// the record is recycled. A delivery for an identity with no record is an
// injected duplicate (the first delivery already closed it): it is
// tallied separately so totals still reconcile with the aggregate latency
// histogram, which observes every delivery.
func (e *Engine) SampleDelivered(t float64, s resources.Sample, latencyUS float64) {
	r, ok := e.close(s)
	if !ok {
		e.dupDelivered++
		e.dupLatencySumUS += latencyUS
		return
	}
	if !r.hasFwd {
		// Degenerate path (no forward observed — cannot happen in the
		// model, but stay total): attribute everything to pipe-wait.
		r.fwdT = t
		r.getT = t
		r.maxPut = r.putT
		r.lastT = t
	}
	r.net += t - r.lastT

	pipeWait := (r.putT - r.genT) + (r.getT - r.maxPut)
	batchRes := r.maxPut - r.putT
	daemonSvc := r.fwdT - r.getT
	mainRcpt := 0.0

	e.observe(StagePipeWait, pipeWait)
	e.observe(StageBatchResidency, batchRes)
	e.observe(StageDaemonService, daemonSvc)
	e.observe(StageNetworkTransit, r.net)
	e.observe(StageMerge, r.merge)
	e.observe(StageMainReceipt, mainRcpt)

	e.delivered++
	e.latencySumUS += latencyUS
	sum := pipeWait + batchRes + daemonSvc + r.net + r.merge + mainRcpt
	if err := math.Abs(sum - latencyUS); err > e.maxCloseErrUS {
		e.maxCloseErrUS = err
	}
}

// observe records one stage dwell, clamping the tiny negative residues
// float cancellation can produce at zero-width stages.
func (e *Engine) observe(st Stage, v float64) {
	if v < 0 {
		v = 0
	}
	e.hists[st].Observe(v)
	e.sums[st] += v
}

// SampleLost implements obs.FlowObserver: the path ended without
// delivery. The record closes without stage observations; a loss for an
// already-closed identity (a duplicate dying after the original closed)
// is tallied separately.
func (e *Engine) SampleLost(node int, t float64, s resources.Sample, reason procs.LossReason) {
	if _, ok := e.close(s); !ok {
		e.dupLost++
		return
	}
	if reason >= 0 && int(reason) < len(e.lost) {
		e.lost[reason]++
	}
}

// ResetAccounting implements obs.FlowObserver: warmup removal. All
// aggregates clear; in-flight records survive, so a sample generated
// during warmup but delivered in the measured window decomposes over its
// full path — exactly how the model's latency accumulator measures it.
func (e *Engine) ResetAccounting() {
	for i := Stage(0); i < NumStages; i++ {
		e.hists[i].Reset()
		e.sums[i] = 0
	}
	e.generated, e.delivered, e.dropped = 0, 0, 0
	e.lost = [4]uint64{}
	e.dupDelivered, e.dupLost = 0, 0
	e.latencySumUS, e.dupLatencySumUS, e.maxCloseErrUS = 0, 0, 0
}

// Histogram returns the stage's dwell histogram (live: the exporter
// snapshots it mid-run).
func (e *Engine) Histogram(s Stage) *obs.Histogram { return e.hists[s] }

// Stages summarizes every stage over the delivered samples, in stage
// order. Shares are exact sum ratios, so they are byte-deterministic.
func (e *Engine) Stages() []StageSummary {
	total := 0.0
	for i := Stage(0); i < NumStages; i++ {
		total += e.sums[i]
	}
	out := make([]StageSummary, 0, NumStages)
	for i := Stage(0); i < NumStages; i++ {
		h := e.hists[i]
		s := StageSummary{
			Stage:  i.String(),
			MeanUS: h.Mean(),
			P50US:  h.Quantile(0.50),
			P95US:  h.Quantile(0.95),
			P99US:  h.Quantile(0.99),
			SumUS:  e.sums[i],
		}
		if total > 0 {
			s.SharePct = e.sums[i] / total * 100
		}
		out = append(out, s)
	}
	return out
}

// Accounting counters (measured window).

// Generated returns samples seen generated.
func (e *Engine) Generated() uint64 { return e.generated }

// Delivered returns first deliveries (duplicates excluded).
func (e *Engine) Delivered() uint64 { return e.delivered }

// Dropped returns samples that died at a full pipe.
func (e *Engine) Dropped() uint64 { return e.dropped }

// Lost returns first losses with the given reason.
func (e *Engine) Lost(reason procs.LossReason) uint64 {
	if reason < 0 || int(reason) >= len(e.lost) {
		return 0
	}
	return e.lost[reason]
}

// LostTotal returns first losses over all reasons.
func (e *Engine) LostTotal() uint64 {
	var n uint64
	for _, v := range e.lost {
		n += v
	}
	return n
}

// DupDelivered returns deliveries of already-closed identities (injected
// duplicates reaching the main process).
func (e *Engine) DupDelivered() uint64 { return e.dupDelivered }

// DupLost returns losses of already-closed identities.
func (e *Engine) DupLost() uint64 { return e.dupLost }

// InFlight returns the number of open records.
func (e *Engine) InFlight() int { return len(e.recs) }

// PoolSize returns the free-list length (recycled records awaiting reuse).
func (e *Engine) PoolSize() int { return len(e.free) }

// LatencySumUS returns the exact latency total over first deliveries.
func (e *Engine) LatencySumUS() float64 { return e.latencySumUS }

// DupLatencySumUS returns the latency total over duplicate deliveries.
func (e *Engine) DupLatencySumUS() float64 { return e.dupLatencySumUS }

// StageSumUS returns the exact total dwell across all stages over first
// deliveries — equal to LatencySumUS up to float tolerance.
func (e *Engine) StageSumUS() float64 {
	total := 0.0
	for i := Stage(0); i < NumStages; i++ {
		total += e.sums[i]
	}
	return total
}

// MaxCloseErrUS returns the largest per-sample |Σ stages − latency|
// closure error seen — the "for every sample" decomposition guarantee.
func (e *Engine) MaxCloseErrUS() float64 { return e.maxCloseErrUS }
