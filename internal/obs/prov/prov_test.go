package prov

import (
	"math"
	"testing"

	"rocc/internal/procs"
	"rocc/internal/resources"
)

func sample(proc, seq int) resources.Sample {
	return resources.Sample{GenTime: 10, Node: 0, Proc: proc, Seq: seq}
}

// Direct path with a blocked put and a two-sample batch: the decomposition
// must reproduce each boundary delta exactly and telescope to the
// measured latency.
func TestExactDecompositionDirectPath(t *testing.T) {
	e := NewEngine()
	a, b := sample(0, 1), sample(1, 1)
	b.GenTime = 14

	e.SampleGenerated(10, a, true)
	e.PipePut(12, a) // blocked for 2us
	e.SampleGenerated(14, b, false)
	e.PipePut(14, b)
	e.PipeGet(30, a)
	e.PipeGet(30, b)
	batch := []resources.Sample{a, b}
	e.BatchForwarded(0, 35, batch, 1)
	e.SampleDelivered(50, a, 40)
	e.SampleDelivered(50, b, 36)

	// Sample a: pipe-wait (12-10)+(30-14)=18, batch-residency 14-12=2,
	// daemon-service 35-30=5, network 50-35=15.
	// Sample b: pipe-wait (14-14)+(30-14)=16, batch-residency 0,
	// daemon-service 5, network 15.
	want := map[Stage]float64{
		StagePipeWait:       18 + 16,
		StageBatchResidency: 2 + 0,
		StageDaemonService:  5 + 5,
		StageNetworkTransit: 15 + 15,
		StageMerge:          0,
		StageMainReceipt:    0,
	}
	for st, w := range want {
		if got := e.Stages()[st].SumUS; math.Abs(got-w) > 1e-9 {
			t.Errorf("%s sum = %v, want %v", st, got, w)
		}
	}
	if e.MaxCloseErrUS() > 1e-9 {
		t.Errorf("closure error %v", e.MaxCloseErrUS())
	}
	if e.StageSumUS() != e.LatencySumUS() || e.LatencySumUS() != 76 {
		t.Errorf("stage total %v, latency total %v, want both 76", e.StageSumUS(), e.LatencySumUS())
	}
	if e.InFlight() != 0 || e.Delivered() != 2 {
		t.Errorf("in-flight %d delivered %d", e.InFlight(), e.Delivered())
	}
}

// Tree path: forward, relay arrival, relay re-forward, delivery. Network
// legs and the merge dwell accumulate separately.
func TestTreePathMergeLeg(t *testing.T) {
	e := NewEngine()
	a := sample(0, 1)
	e.SampleGenerated(10, a, false)
	e.PipePut(10, a)
	e.PipeGet(30, a)
	batch := []resources.Sample{a}
	e.BatchForwarded(0, 35, batch, 1)
	e.BatchArrived(1, 40, batch, 1)   // leg 1: 5us
	e.BatchForwarded(1, 44, batch, 2) // merge: 4us
	e.SampleDelivered(50, a, 40)      // leg 2: 6us

	ss := e.Stages()
	if got := ss[StageNetworkTransit].SumUS; got != 11 {
		t.Errorf("network %v, want 11", got)
	}
	if got := ss[StageMerge].SumUS; got != 4 {
		t.Errorf("merge %v, want 4", got)
	}
	if e.MaxCloseErrUS() > 1e-9 {
		t.Errorf("closure error %v", e.MaxCloseErrUS())
	}
}

// Injected duplicate copies share the sample's identity. The hop guard
// must keep a duplicate arrival (same depth, already off the network)
// and a duplicate delivery from corrupting the decomposition.
func TestDuplicateCopiesDoNotCorrupt(t *testing.T) {
	e := NewEngine()
	a := sample(0, 1)
	e.SampleGenerated(10, a, false)
	e.PipePut(10, a)
	e.PipeGet(30, a)
	batch := []resources.Sample{a}
	e.BatchForwarded(0, 35, batch, 1)
	e.SampleDelivered(50, a, 40) // original closes the record
	e.SampleDelivered(55, a, 45) // duplicate copy arrives later
	e.SampleLost(0, 60, a, procs.LossCrash)

	if e.Delivered() != 1 || e.DupDelivered() != 1 || e.DupLost() != 1 {
		t.Fatalf("delivered %d dup %d duplost %d", e.Delivered(), e.DupDelivered(), e.DupLost())
	}
	if e.LatencySumUS() != 40 || e.DupLatencySumUS() != 45 {
		t.Fatalf("latency sums %v/%v", e.LatencySumUS(), e.DupLatencySumUS())
	}
	if e.MaxCloseErrUS() > 1e-9 {
		t.Fatalf("closure error %v", e.MaxCloseErrUS())
	}
}

// A duplicate still in flight: the guard rejects an arrival at the wrong
// depth and a stale re-forward, so legs never double-count.
func TestHopGuardRejectsStaleCopies(t *testing.T) {
	e := NewEngine()
	a := sample(0, 1)
	e.SampleGenerated(10, a, false)
	e.PipePut(10, a)
	e.PipeGet(30, a)
	batch := []resources.Sample{a}
	e.BatchForwarded(0, 35, batch, 1)
	e.BatchArrived(1, 40, batch, 1)
	e.BatchArrived(1, 42, batch, 1)   // dup arrival at same depth: ignored
	e.BatchForwarded(1, 44, batch, 2) // merge 4us
	e.BatchForwarded(1, 46, batch, 2) // dup re-forward: ignored
	e.SampleDelivered(50, a, 40)

	ss := e.Stages()
	if got := ss[StageMerge].SumUS; got != 4 {
		t.Errorf("merge %v, want 4 (stale re-forward must be ignored)", got)
	}
	if got := ss[StageNetworkTransit].SumUS; got != 11 {
		t.Errorf("network %v, want 11", got)
	}
	if e.MaxCloseErrUS() > 1e-9 {
		t.Errorf("closure error %v", e.MaxCloseErrUS())
	}
}

// Losses and drops close records without stage observations, by reason.
func TestLossAndDropAccounting(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		s := sample(0, i)
		e.SampleGenerated(10, s, false)
		e.PipePut(10, s)
	}
	e.SampleLost(0, 20, sample(0, 0), procs.LossThinned)
	e.SampleLost(0, 21, sample(0, 1), procs.LossCrash)
	e.PipeDropped(22, sample(0, 2))
	if e.Lost(procs.LossThinned) != 1 || e.Lost(procs.LossCrash) != 1 || e.Dropped() != 1 {
		t.Fatalf("loss accounting: thinned %d crash %d dropped %d",
			e.Lost(procs.LossThinned), e.Lost(procs.LossCrash), e.Dropped())
	}
	if e.LostTotal() != 2 || e.InFlight() != 1 {
		t.Fatalf("total %d in-flight %d", e.LostTotal(), e.InFlight())
	}
	if e.Stages()[StagePipeWait].SumUS != 0 {
		t.Fatal("lost samples must not observe stages")
	}
}

// Closed records recycle through the pool: after a warm-up pass the
// steady-state in-flight population reuses records instead of
// allocating.
func TestRecordPoolRecycles(t *testing.T) {
	e := NewEngine()
	drive := func(seq int) {
		s := sample(0, seq)
		e.SampleGenerated(10, s, false)
		e.PipePut(10, s)
		e.PipeGet(12, s)
		e.BatchForwarded(0, 13, []resources.Sample{s}, 1)
		e.SampleDelivered(20, s, 10)
	}
	drive(0)
	if e.PoolSize() != 1 {
		t.Fatalf("pool %d after first close, want 1", e.PoolSize())
	}
	for seq := 1; seq < 100; seq++ {
		drive(seq)
	}
	// One at a time in flight: the pool never needs a second record.
	if e.PoolSize() != 1 {
		t.Fatalf("pool grew to %d with 1 sample in flight", e.PoolSize())
	}
	if e.Delivered() != 100 || e.InFlight() != 0 {
		t.Fatalf("delivered %d in-flight %d", e.Delivered(), e.InFlight())
	}
}

// ResetAccounting clears aggregates but keeps in-flight records (warmup
// carryover) and preserves histogram identity for live exporters.
func TestResetKeepsInFlightAndHistogramIdentity(t *testing.T) {
	e := NewEngine()
	h := e.Histogram(StagePipeWait)
	a, b := sample(0, 1), sample(0, 2)
	b.GenTime = 15
	e.SampleGenerated(10, a, false)
	e.PipePut(10, a)
	e.PipeGet(12, a)
	e.BatchForwarded(0, 13, []resources.Sample{a}, 1)
	e.SampleDelivered(20, a, 10)
	e.SampleGenerated(15, b, false) // still in flight at reset
	e.PipePut(15, b)

	e.ResetAccounting()
	if e.Delivered() != 0 || e.StageSumUS() != 0 || e.Generated() != 0 {
		t.Fatal("aggregates survived reset")
	}
	if e.InFlight() != 1 {
		t.Fatalf("in-flight %d after reset, want 1 (carryover)", e.InFlight())
	}
	if e.Histogram(StagePipeWait) != h {
		t.Fatal("reset replaced the histogram object")
	}
	if h.Count() != 0 {
		t.Fatal("histogram content survived reset")
	}
	// The carryover sample decomposes over its full path.
	e.PipeGet(30, b)
	e.BatchForwarded(0, 31, []resources.Sample{b}, 1)
	e.SampleDelivered(40, b, 25)
	if e.Delivered() != 1 || math.Abs(e.StageSumUS()-25) > 1e-9 {
		t.Fatalf("carryover decomposition: delivered %d stage sum %v", e.Delivered(), e.StageSumUS())
	}
}

// Stage labels, metric names, and summaries stay aligned with NumStages.
func TestStageNaming(t *testing.T) {
	seen := map[string]bool{}
	for i := Stage(0); i < NumStages; i++ {
		if i.String() == "unknown" {
			t.Fatalf("stage %d has no label", i)
		}
		if seen[i.metricName()] {
			t.Fatalf("duplicate metric name %s", i.metricName())
		}
		seen[i.metricName()] = true
	}
	e := NewEngine()
	if got := len(e.Stages()); got != int(NumStages) {
		t.Fatalf("Stages() returned %d entries, want %d", got, NumStages)
	}
}
