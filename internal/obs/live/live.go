// Package live is the runtime telemetry plane over internal/obs: where
// obs records a run for post-hoc analysis, live exposes the same
// registries while the run is still executing — as OpenMetrics text for
// a Prometheus-style scraper and as JSON progress for humans mid-sweep.
//
// The package has two halves:
//
//   - Exporter renders attached metric sources (obs.Metrics,
//     obs.SweepMetrics, extra gauge callbacks) in the OpenMetrics text
//     exposition format, with every metric family appearing exactly once
//     in a stable sorted order. Reads are race-safe against a mutating
//     run: counters and gauges load atomically, histograms and sampler
//     series copy under their locks (see internal/obs).
//   - Server is the embeddable monitoring HTTP server behind the -http
//     flag of roccsweep, roccbench, and roccsim: /metrics (OpenMetrics),
//     /healthz (liveness JSON), /progress (a caller-supplied JSON
//     snapshot, e.g. dist.Progress), and net/http/pprof under
//     /debug/pprof/.
//
// Nothing here touches simulation state: the exporter only reads, and a
// binary that never passes -http pays nothing — no listener, no
// goroutine, no allocation.
package live

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"rocc/internal/obs"
)

// MetricPrefix is prepended to every exported metric family name.
const MetricPrefix = "rocc_"

// gaugeSource is one registered callback gauge.
type gaugeSource struct {
	name string
	help string
	read func() float64
}

// Exporter renders attached metric sources as OpenMetrics text. All
// methods are safe for concurrent use; sources may be attached while
// scrapes are in flight (a scrape sees the sources attached at its
// start).
type Exporter struct {
	mu     sync.Mutex
	run    *obs.Metrics
	sweep  *obs.SweepMetrics
	gauges []gaugeSource
	hists  []histSource
}

// histSource is one registered standalone histogram (e.g. the provenance
// engine's per-stage dwell histograms).
type histSource struct {
	h    *obs.Histogram
	help string
}

// NewExporter returns an empty exporter; attach sources with SetRun,
// SetSweep, and AddGauge.
func NewExporter() *Exporter { return &Exporter{} }

// SetRun attaches a simulation run's metric registry: its pipeline
// counters, the delivery-latency histogram, and any sampler series
// (exported as gauges holding each series' latest sample).
func (e *Exporter) SetRun(m *obs.Metrics) {
	e.mu.Lock()
	e.run = m
	e.mu.Unlock()
}

// SetSweep attaches a distributed sweep's fault-handling counters.
func (e *Exporter) SetSweep(m *obs.SweepMetrics) {
	e.mu.Lock()
	e.sweep = m
	e.mu.Unlock()
}

// AddGauge registers a callback gauge under the given family name
// (without the rocc_ prefix). The callback runs at scrape time and must
// be safe for concurrent use. Registering a name twice keeps the first
// registration — families must appear exactly once in the output.
func (e *Exporter) AddGauge(name, help string, read func() float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, g := range e.gauges {
		if g.name == name {
			return
		}
	}
	e.gauges = append(e.gauges, gaugeSource{name: name, help: help, read: read})
}

// AddHistogram registers a standalone histogram family (named by the
// histogram itself, rocc_ prefix added). Scrapes snapshot it under its
// lock, so a mutating run never races a scrape. Registering the same
// histogram name twice keeps the first registration.
func (e *Exporter) AddHistogram(h *obs.Histogram, help string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.hists {
		if s.h.Name == h.Name {
			return
		}
	}
	e.hists = append(e.hists, histSource{h: h, help: help})
}

// family is one metric family ready to render: a TYPE line and its
// sample lines.
type family struct {
	name    string // full name, prefix included
	typ     string // counter, gauge, histogram
	help    string
	samples []string // fully rendered sample lines
}

// WriteOpenMetrics renders every attached source in the OpenMetrics text
// exposition format: families sorted by name, each exactly once (the
// first registration wins on a name collision), terminated by the
// mandatory "# EOF" line.
func (e *Exporter) WriteOpenMetrics(w io.Writer) error {
	e.mu.Lock()
	run, sweep := e.run, e.sweep
	gauges := append([]gaugeSource(nil), e.gauges...)
	hists := append([]histSource(nil), e.hists...)
	e.mu.Unlock()

	var fams []family
	if run != nil {
		for _, c := range run.Counters() {
			fams = append(fams, counterFamily(MetricPrefix+sanitizeName(c.Name),
				"simulation pipeline counter "+c.Name, c.Value()))
		}
		fams = append(fams, histogramFamily(run.Latency, "sample delivery latency distribution"))
		for _, s := range run.Series() {
			s := s
			fams = append(fams, seriesFamily(s))
		}
	}
	for _, hs := range hists {
		fams = append(fams, histogramFamily(hs.h, hs.help))
	}
	if sweep != nil {
		for _, c := range sweep.Counters() {
			fams = append(fams, counterFamily(MetricPrefix+"sweep_"+sanitizeName(c.Name),
				"distributed sweep fault-handling counter "+c.Name, c.Value()))
		}
	}
	for _, g := range gauges {
		fams = append(fams, family{
			name:    MetricPrefix + sanitizeName(g.name),
			typ:     "gauge",
			help:    g.help,
			samples: []string{fmt.Sprintf("%s %s", MetricPrefix+sanitizeName(g.name), formatFloat(g.read()))},
		})
	}

	// Exactly-once with a stable order: sort by family name, drop any
	// later duplicate. Every registry above already names its counters
	// uniquely; this guards combinations (e.g. a callback gauge colliding
	// with a counter family) so the exposition stays parseable.
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := fams[:0]
	for _, f := range fams {
		if len(out) > 0 && out[len(out)-1].name == f.name {
			continue
		}
		out = append(out, f)
	}

	var b strings.Builder
	for _, f := range out {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// counterFamily renders one monotonic counter (sample name carries the
// OpenMetrics-mandated _total suffix).
func counterFamily(name, help string, v uint64) family {
	return family{
		name:    name,
		typ:     "counter",
		help:    help,
		samples: []string{fmt.Sprintf("%s_total %d", name, v)},
	}
}

// histogramFamily renders a histogram snapshot with cumulative buckets,
// the mandatory +Inf bucket, and _sum/_count samples.
func histogramFamily(h *obs.Histogram, help string) family {
	snap := h.Snapshot()
	name := MetricPrefix + sanitizeName(snap.Name)
	samples := make([]string, 0, len(snap.Counts)+2)
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatFloat(snap.Bounds[i])
		}
		samples = append(samples, fmt.Sprintf("%s_bucket{le=%q} %d", name, le, cum))
	}
	samples = append(samples,
		fmt.Sprintf("%s_count %d", name, snap.Total),
		fmt.Sprintf("%s_sum %s", name, formatFloat(snap.Sum)))
	return family{name: name, typ: "histogram", help: help, samples: samples}
}

// seriesFamily renders a sampler series' most recent sample as a gauge,
// with the simulated timestamp alongside in a companion label-free
// metric would be overkill — the sim time rides as a label instead.
func seriesFamily(s *obs.Series) family {
	name := MetricPrefix + "series_" + sanitizeName(s.Name)
	t, v, ok := s.Last()
	if !ok {
		return family{name: name, typ: "gauge",
			help:    "latest value of sampler series " + s.Name,
			samples: []string{name + " 0"}}
	}
	return family{name: name, typ: "gauge",
		help: "latest value of sampler series " + s.Name,
		samples: []string{fmt.Sprintf("%s{sim_time_us=%q} %s",
			name, formatFloat(t), formatFloat(v))}}
}
