package live

import (
	"math"
	"strings"
	"sync"
	"testing"

	"rocc/internal/obs"
	"rocc/internal/obs/prov"
)

// The sweep-counter exposition is pinned byte for byte: every counter
// exactly once, families sorted by name, counter samples carrying the
// _total suffix, and the mandatory # EOF terminator. Renaming or
// re-registering a SweepMetrics counter must show up here.
func TestSweepExpositionGolden(t *testing.T) {
	m := obs.NewSweepMetrics()
	m.Dispatched.Add(12)
	m.Completed.Add(10)
	m.Retries.Add(3)
	m.Redispatches.Add(2)
	m.Duplicates.Add(1)
	m.Timeouts.Add(1)
	m.WorkerFailures.Add(4)
	m.WorkerRestarts.Add(2)
	m.Quarantines.Add(1)
	m.LocalShards.Add(2)

	e := NewExporter()
	e.SetSweep(m)
	var b strings.Builder
	if err := e.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP rocc_sweep_completed distributed sweep fault-handling counter completed
# TYPE rocc_sweep_completed counter
rocc_sweep_completed_total 10
# HELP rocc_sweep_dispatched distributed sweep fault-handling counter dispatched
# TYPE rocc_sweep_dispatched counter
rocc_sweep_dispatched_total 12
# HELP rocc_sweep_duplicates distributed sweep fault-handling counter duplicates
# TYPE rocc_sweep_duplicates counter
rocc_sweep_duplicates_total 1
# HELP rocc_sweep_local_shards distributed sweep fault-handling counter local_shards
# TYPE rocc_sweep_local_shards counter
rocc_sweep_local_shards_total 2
# HELP rocc_sweep_quarantines distributed sweep fault-handling counter quarantines
# TYPE rocc_sweep_quarantines counter
rocc_sweep_quarantines_total 1
# HELP rocc_sweep_redispatches distributed sweep fault-handling counter redispatches
# TYPE rocc_sweep_redispatches counter
rocc_sweep_redispatches_total 2
# HELP rocc_sweep_retries distributed sweep fault-handling counter retries
# TYPE rocc_sweep_retries counter
rocc_sweep_retries_total 3
# HELP rocc_sweep_timeouts distributed sweep fault-handling counter timeouts
# TYPE rocc_sweep_timeouts counter
rocc_sweep_timeouts_total 1
# HELP rocc_sweep_worker_failures distributed sweep fault-handling counter worker_failures
# TYPE rocc_sweep_worker_failures counter
rocc_sweep_worker_failures_total 4
# HELP rocc_sweep_worker_restarts distributed sweep fault-handling counter worker_restarts
# TYPE rocc_sweep_worker_restarts counter
rocc_sweep_worker_restarts_total 2
# EOF
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if n, err := ParseExposition(strings.NewReader(b.String())); err != nil || n != 10 {
		t.Fatalf("ParseExposition = (%d, %v), want (10, nil)", n, err)
	}
}

// A full run registry — counters, the 41-bucket latency histogram, and
// sampler series — must render to exposition text that parses, with each
// family declared exactly once.
func TestRunExpositionParses(t *testing.T) {
	m := obs.NewMetrics()
	m.Generated.Add(100)
	m.Delivered.Add(98)
	for _, v := range []float64{120, 450, 4500, 90000} {
		m.Latency.Observe(v)
	}

	e := NewExporter()
	e.SetRun(m)
	e.AddGauge("sim_time_sec", "simulated seconds elapsed", func() float64 { return 1.5 })

	var b strings.Builder
	if err := e.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if _, err := ParseExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("run exposition does not parse: %v\n%s", err, text)
	}
	for _, want := range []string{
		"rocc_generated_total 100",
		"rocc_delivered_total 98",
		"# TYPE rocc_sample_latency_us histogram",
		`rocc_sample_latency_us_bucket{le="+Inf"} 4`,
		"rocc_sample_latency_us_count 4",
		"rocc_sim_time_sec 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := strings.Count(text, "# TYPE rocc_generated counter"); got != 1 {
		t.Errorf("rocc_generated declared %d times, want exactly 1", got)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("exposition must end with # EOF")
	}
}

// Registered standalone histograms (the provenance engine's per-stage
// families) export alongside the run registry, parse cleanly, and
// duplicate registrations keep the first.
func TestExpositionStageHistograms(t *testing.T) {
	eng := prov.NewEngine()
	e := NewExporter()
	e.SetRun(obs.NewMetrics())
	for st := prov.Stage(0); st < prov.NumStages; st++ {
		e.AddHistogram(eng.Histogram(st), "per-sample dwell in stage "+st.String())
	}
	// Second registration of the same family name is a no-op.
	e.AddHistogram(eng.Histogram(prov.StagePipeWait), "duplicate")

	var b strings.Builder
	if err := e.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	_, families, err := ParseExpositionFamilies(strings.NewReader(text))
	if err != nil {
		t.Fatalf("stage exposition does not parse: %v\n%s", err, text)
	}
	stage := 0
	for _, f := range families {
		if strings.HasPrefix(f, "rocc_latency_stage_") {
			stage++
		}
	}
	if stage != int(prov.NumStages) {
		t.Fatalf("%d rocc_latency_stage_ families, want %d:\n%v", stage, prov.NumStages, families)
	}
	if got := strings.Count(text, "# TYPE rocc_latency_stage_pipe_wait_us "); got != 1 {
		t.Fatalf("pipe-wait family declared %d times, want 1", got)
	}
}

// Name collisions keep the first registration: a callback gauge that
// collides with an existing family must not produce a duplicate TYPE.
func TestExpositionDeduplicatesFamilies(t *testing.T) {
	m := obs.NewSweepMetrics()
	e := NewExporter()
	e.SetSweep(m)
	e.AddGauge("sweep_retries", "colliding name", func() float64 { return 99 })
	e.AddGauge("sweep_retries", "registered twice", func() float64 { return 77 })

	var b strings.Builder
	if err := e.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if got := strings.Count(text, "# TYPE rocc_sweep_retries "); got != 1 {
		t.Fatalf("rocc_sweep_retries declared %d times, want 1:\n%s", got, text)
	}
	if _, err := ParseExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("deduplicated exposition does not parse: %v", err)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":        "# TYPE a counter\na_total 1\n",
		"content after EOF":  "# EOF\nx 1\n",
		"undeclared family":  "mystery_metric 4\n# EOF\n",
		"bad value":          "# TYPE a gauge\na one\n# EOF\n",
		"duplicate TYPE":     "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n",
		"bad name":           "# TYPE a gauge\n0badname 1\n# EOF\n",
		"unterminated label": "# TYPE a gauge\na{x=\"1\" 2\n# EOF\n",
		"unknown type":       "# TYPE a flavor\na 1\n# EOF\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseExposition accepted %q", name, text)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"pipe depth (node 3)": "pipe_depth__node_3_",
		"ok_name:x9":          "ok_name:x9",
		"9lead":               "_lead",
		"":                    "_",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	for v, want := range map[float64]string{
		1.5:              "1.5",
		100:              "100",
		math.Inf(1):      "+Inf",
		math.Inf(-1):     "-Inf",
		0.00012345678901: "0.00012345678901",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

// Scraping while a simulated run mutates every source must be free of
// data races (the -race referee for the whole export path).
func TestScrapeWhileMutating(t *testing.T) {
	m := obs.NewMetrics()
	m.Latency.EnableStaging(8)
	sm := obs.NewSweepMetrics()
	e := NewExporter()
	e.SetRun(m)
	e.SetSweep(sm)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Generated.Add(1)
			m.Latency.Observe(float64(100 + i%5000))
			sm.Dispatched.Add(1)
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := e.WriteOpenMetrics(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
			t.Fatalf("scrape %d does not parse: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
