package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"rocc/internal/obs"
)

// startTestServer binds an ephemeral port and registers cleanup.
func startTestServer(t *testing.T, exp *Exporter) (*Server, string) {
	t.Helper()
	s := NewServer(exp)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, "http://" + addr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServerEndpoints(t *testing.T) {
	m := obs.NewSweepMetrics()
	m.Dispatched.Add(7)
	exp := NewExporter()
	exp.SetSweep(m)
	s, base := startTestServer(t, exp)

	if s.Addr() == "" || !strings.Contains(s.Addr(), ":") {
		t.Fatalf("Addr() = %q, want a bound host:port", s.Addr())
	}

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status    string  `json:"status"`
		PID       int     `json:"pid"`
		UptimeSec float64 `json:"uptime_sec"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.PID == 0 || health.UptimeSec < 0 {
		t.Fatalf("/healthz = %+v", health)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	n, err := ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if n == 0 || !strings.Contains(body, "rocc_sweep_dispatched_total 7") {
		t.Fatalf("/metrics missing sweep counters:\n%s", body)
	}

	// /progress with no source: 503 with a JSON error, not a panic.
	code, body = get(t, base+"/progress")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no progress source") {
		t.Fatalf("/progress without source = %d %q", code, body)
	}

	s.SetProgress(func() any {
		return map[string]any{"shards": 10, "done": 4}
	})
	code, body = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var prog map[string]any
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if prog["done"] != float64(4) {
		t.Fatalf("/progress = %v", prog)
	}

	// pprof must be mounted.
	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

// ":0" must bind an ephemeral port and report the real address; Close
// must be idempotent and safe before Start.
func TestServerEphemeralPortAndClose(t *testing.T) {
	s := NewServer(nil)
	if err := s.Close(); err != nil {
		t.Fatalf("Close before Start: %v", err)
	}
	addr, err := s.Start(":0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("Start(:0) reported unbound address %q", addr)
	}
	code, _ := get(t, fmt.Sprintf("http://127.0.0.1:%s/healthz", addr[strings.LastIndex(addr, ":")+1:]))
	if code != http.StatusOK {
		t.Fatalf("healthz on ephemeral port: %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// A garbage address must fail Start with an error, not panic or hang.
func TestServerStartRejectsBadAddress(t *testing.T) {
	s := NewServer(nil)
	if _, err := s.Start("not-an-address:-1"); err == nil {
		s.Close()
		t.Fatal("Start accepted a garbage address")
	}
}
