package live

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// sanitizeName maps an arbitrary metric name onto the OpenMetrics name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*; every illegal rune becomes '_'.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, with the spec spellings for the
// non-finite values.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseExposition validates OpenMetrics/Prometheus text exposition
// produced by Exporter.WriteOpenMetrics (or any conforming scrape) and
// returns the number of sample lines. It enforces the invariants a
// scraper relies on:
//
//   - every sample line parses as name[{labels}] value [timestamp];
//   - every sample belongs to a family announced by a # TYPE line, after
//     stripping the counter/histogram sample suffixes;
//   - no family is declared twice;
//   - the stream ends with the mandatory "# EOF" line and nothing after.
//
// It is the referee for the exposition golden tests and the CI telemetry
// smoke step (tools/checkexpo).
func ParseExposition(r io.Reader) (samples int, err error) {
	samples, _, err = parseExposition(r)
	return samples, err
}

// ParseExpositionFamilies validates like ParseExposition and additionally
// returns the declared family names in sorted order, so callers (e.g.
// tools/checkexpo -require) can assert that specific families made it
// into a scrape.
func ParseExpositionFamilies(r io.Reader) (samples int, families []string, err error) {
	samples, types, err := parseExposition(r)
	if err != nil {
		return 0, nil, err
	}
	families = make([]string, 0, len(types))
	for name := range types {
		families = append(families, name)
	}
	sort.Strings(families)
	return samples, families, nil
}

func parseExposition(r io.Reader) (samples int, types map[string]string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types = map[string]string{}
	sawEOF := false
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEOF {
			return 0, nil, fmt.Errorf("line %d: content after # EOF", line)
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "EOF" {
				sawEOF = true
				continue
			}
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP" || fields[1] == "UNIT") {
				if len(fields) < 3 {
					return 0, nil, fmt.Errorf("line %d: malformed %s comment: %q", line, fields[1], text)
				}
				if fields[1] == "TYPE" {
					name := fields[2]
					if len(fields) < 4 {
						return 0, nil, fmt.Errorf("line %d: TYPE %s missing a type", line, name)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped", "info", "stateset", "gaugehistogram":
					default:
						return 0, nil, fmt.Errorf("line %d: unknown metric type %q", line, fields[3])
					}
					if _, dup := types[name]; dup {
						return 0, nil, fmt.Errorf("line %d: family %s declared twice", line, name)
					}
					types[name] = fields[3]
				}
				continue
			}
			continue // free-form comment
		}
		name, err := parseSampleLine(text)
		if err != nil {
			return 0, nil, fmt.Errorf("line %d: %v", line, err)
		}
		if familyOf(name, types) == "" {
			return 0, nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", line, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if !sawEOF {
		return 0, nil, fmt.Errorf("missing terminating # EOF line")
	}
	return samples, types, nil
}

// parseSampleLine checks one sample line and returns its metric name.
func parseSampleLine(text string) (string, error) {
	rest := text
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return "", fmt.Errorf("malformed sample line %q", text)
	}
	name := rest[:i]
	if !validName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated label set in %q", text)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("want 'name[{labels}] value [timestamp]', got %q", text)
	}
	if _, err := parseValue(fields[0]); err != nil {
		return "", fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, nil
}

// parseValue accepts exposition numbers, including the spec spellings of
// the non-finite values.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validName reports whether s matches the metric-name grammar.
func validName(s string) bool {
	return s != "" && s == sanitizeName(s)
}

// familyOf resolves a sample name to its declared family, stripping the
// structured suffixes counters and histograms append to sample names.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count", "_created"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := types[base]; declared {
				return base
			}
		}
	}
	return ""
}
