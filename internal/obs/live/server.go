package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"
)

// Server is the embeddable monitoring endpoint behind the -http flag:
//
//	GET /metrics       OpenMetrics text from the attached Exporter
//	GET /healthz       liveness JSON (status, pid, uptime)
//	GET /progress      caller-supplied progress snapshot as JSON
//	GET /debug/pprof/  the standard net/http/pprof handlers
//
// Start binds the listener (":0" picks a free port; the bound address is
// returned and should be logged), serves in a background goroutine, and
// Close shuts it down. A Server is cheap enough to run alongside any
// sweep or simulation; everything it reads is race-safe by construction.
type Server struct {
	exporter *Exporter

	mu       sync.Mutex
	progress func() any
	started  time.Time
	srv      *http.Server
	ln       net.Listener
}

// NewServer returns a server exporting metrics from exp (which may have
// sources attached later, or never).
func NewServer(exp *Exporter) *Server {
	if exp == nil {
		exp = NewExporter()
	}
	return &Server{exporter: exp}
}

// Exporter returns the server's exporter, for attaching sources.
func (s *Server) Exporter() *Exporter { return s.exporter }

// SetProgress installs the /progress snapshot source. The callback runs
// per request and must be safe for concurrent use; its result is
// JSON-encoded verbatim (e.g. dist.Progress).
func (s *Server) SetProgress(fn func() any) {
	s.mu.Lock()
	s.progress = fn
	s.mu.Unlock()
}

// Start binds addr (host:port; ":0" for an ephemeral port) and begins
// serving in a background goroutine. It returns the bound address so
// callers can log the actual port behind ":0".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	s.started = time.Now()
	s.srv = srv
	s.ln = ln
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server; safe to call before Start or more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type",
		"application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := s.exporter.WriteOpenMetrics(w); err != nil {
		// Headers are gone; the truncated body fails the scraper's parse,
		// which is the correct failure mode.
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	up := time.Since(s.started).Seconds()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"pid":        os.Getpid(),
		"uptime_sec": up,
	})
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.progress
	s.mu.Unlock()
	if fn == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"error": "no progress source attached"})
		return
	}
	writeJSON(w, http.StatusOK, fn())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
