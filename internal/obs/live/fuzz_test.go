package live

import (
	"strings"
	"testing"

	"rocc/internal/obs"
)

// FuzzParseExposition throws arbitrary byte soup at the exposition
// validator. The parser must never panic, and for inputs it accepts the
// two entry points must agree: same sample count, and every declared
// family resolvable (non-empty name in sorted order). A real exporter
// output seeds the corpus so the fuzzer starts from the accepted grammar
// and mutates outward.
func FuzzParseExposition(f *testing.F) {
	m := obs.NewMetrics()
	m.Generated.Add(10)
	m.Latency.Observe(250)
	e := NewExporter()
	e.SetRun(m)
	e.AddGauge("sim_time_sec", "simulated seconds", func() float64 { return 2 })
	var b strings.Builder
	if err := e.WriteOpenMetrics(&b); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())
	f.Add("# EOF\n")
	f.Add("# TYPE a counter\na_total 1\n# EOF\n")
	f.Add("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 7.5\n# EOF\n")
	f.Add("# HELP x y\n# TYPE x gauge\nx{l=\"v\"} NaN 123\n# EOF\n")
	f.Add("mystery 1\n# EOF\n")
	f.Add("# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n")

	f.Fuzz(func(t *testing.T, in string) {
		n1, err1 := ParseExposition(strings.NewReader(in))
		n2, fams, err2 := ParseExpositionFamilies(strings.NewReader(in))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("entry points disagree: ParseExposition err=%v, ParseExpositionFamilies err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if n1 != n2 {
			t.Fatalf("sample counts disagree: %d vs %d", n1, n2)
		}
		for i, name := range fams {
			if name == "" {
				t.Fatal("accepted exposition declared an empty family name")
			}
			if i > 0 && !(fams[i-1] < name) {
				t.Fatalf("families not sorted/unique: %q before %q", fams[i-1], name)
			}
		}
	})
}
