package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"rocc/internal/des"
)

// Counter is a monotonically increasing count. Writes come from the
// single simulation goroutine, but the live telemetry exporter
// (internal/obs/live) reads counters from an HTTP handler while a run
// mutates them, so both sides are atomic: a scrape observes a consistent
// value without ever stalling the hot path.
type Counter struct {
	Name string
	v    atomic.Uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value, readable concurrently with Set (the
// float is stored as atomic bits).
type Gauge struct {
	Name string
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bucketed distribution with interpolated quantiles. The
// bucket i counts observations in (bounds[i-1], bounds[i]]; one overflow
// bucket catches everything above the last bound.
type Histogram struct {
	Name   string
	// mu makes the histogram safe to snapshot from the live exporter
	// while the simulation goroutine observes into it. The lock is
	// uncontended on the hot path (the exporter grabs it only per
	// scrape) and allocation-free, so staged Observe stays zero-alloc.
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1
	total  uint64
	sum    float64
	min    float64
	max    float64

	// staged batches observations in a flat preallocated buffer
	// (EnableStaging) flushed into the buckets when full or when any
	// accessor needs the totals. Merging observations is commutative, so
	// flush timing can never change a reported value — staging only
	// moves the bucket-scan cost off the per-event hot path.
	staged []float64
}

// NewHistogram returns a histogram over the given ascending bucket bounds.
func NewHistogram(name string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		Name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// ExpBuckets returns n exponentially spaced bounds starting at start with
// the given growth factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. With staging enabled (EnableStaging) the
// value lands in the flat batch buffer; the bucket scan happens at flush.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if cap(h.staged) > 0 {
		h.staged = append(h.staged, v)
		if len(h.staged) == cap(h.staged) {
			h.flushLocked()
		}
		h.mu.Unlock()
		return
	}
	h.observe(v)
	h.mu.Unlock()
}

// observe merges one value into the buckets.
func (h *Histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// EnableStaging batches observations in a preallocated buffer of the
// given capacity, flushed when full and whenever an accessor runs. Size
// it to the expected observations per reporting period — the run's
// duration/period geometry — so the flush cadence tracks the sampling
// period.
func (h *Histogram) EnableStaging(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	h.mu.Lock()
	h.flushLocked()
	h.staged = make([]float64, 0, capacity)
	h.mu.Unlock()
}

// flushLocked merges staged observations into the buckets; h.mu held.
func (h *Histogram) flushLocked() {
	for _, v := range h.staged {
		h.observe(v)
	}
	h.staged = h.staged[:0]
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked()
	return h.total
}

// Mean returns the exact mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked()
	if h.total == 0 {
		return 0
	}
	return h.max
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to read
// while the run keeps observing: bucket counts (one overflow bucket past
// the last bound), total, sum, and observed extremes.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is the overflow bucket
	Total  uint64
	Sum    float64
	Min    float64 // +Inf when empty
	Max    float64 // -Inf when empty
}

// Snapshot flushes staged observations and returns a consistent copy —
// the race-safe read the live OpenMetrics exporter renders from.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked()
	return HistogramSnapshot{
		Name:   h.Name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Total:  h.total,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// Quantile estimates the p-quantile (0 <= p <= 1) by locating the bucket
// holding the target rank and interpolating linearly within it, on the
// usual assumption of uniform spread inside a bucket. The estimate is
// clamped to the observed [Min, Max], which also gives exact answers for
// the overflow bucket and single-bucket edge cases. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLocked()
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := p * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			// Bucket i holds the rank. Its value range is
			// (bounds[i-1], bounds[i]], clamped to what was observed.
			lo := h.min
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.max
}

// Reset zeroes the histogram in place (identity-preserving, so live
// exporters holding a reference keep reading the same histogram across a
// warmup reset).
func (h *Histogram) Reset() { h.reset() }

// reset zeroes the histogram in place, discarding staged observations too
// (they were recorded before the reset point).
func (h *Histogram) reset() {
	h.mu.Lock()
	h.staged = h.staged[:0]
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum = 0, 0
	h.min, h.max = math.Inf(1), math.Inf(-1)
	h.mu.Unlock()
}

// Series is one sampled time series: value V[i] observed at simulated
// time T[i] (microseconds). The sampler appends under mu so the live
// exporter can read Len/Last mid-run; post-run analysis code may keep
// reading T/V directly — by then the run goroutine is done, so there is
// no concurrent writer left to race with.
type Series struct {
	Name string
	T    []float64
	V    []float64

	mu sync.Mutex
}

// append records one locked observation (the Sampler's write path).
func (s *Series) append(t, v float64) {
	s.mu.Lock()
	s.T = append(s.T, t)
	s.V = append(s.V, v)
	s.mu.Unlock()
}

// Len returns the number of samples recorded so far (safe mid-run).
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.T)
}

// Last returns the most recent (time, value) sample, with ok reporting
// whether any sample exists yet (safe mid-run).
func (s *Series) Last() (t, v float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.T) == 0 {
		return 0, 0, false
	}
	return s.T[len(s.T)-1], s.V[len(s.V)-1], true
}

// Metrics is the run's metric registry: fixed counters covering the
// sample pipeline, the delivery-latency histogram, and any sampler
// series. Everything is touched from the single simulation goroutine;
// no locking.
type Metrics struct {
	Events        Counter // engine events dispatched
	Generated     Counter // samples written by application processes
	Delivered     Counter // samples received at the main process
	DeliveredMsgs Counter // forwarded messages received at the main process
	Dropped       Counter // samples discarded at full pipes
	BlockedPuts   Counter // application writes stalled on a full pipe
	Batches       Counter // daemon pipe-drain batches
	Forwards      Counter // messages put on the network by daemons
	Retransmits   Counter // resilient-uplink retries
	Crashes       Counter // daemon crashes
	Lost          Counter // samples lost for good (thinning, crashes, links)

	// Latency is the end-to-end sample delivery delay in microseconds
	// (generation at the application to receipt at the main process) —
	// the Figure 16 quantity, as a distribution rather than a mean.
	Latency *Histogram

	series []*Series
}

// NewMetrics returns a registry with the standard pipeline counters and a
// latency histogram spanning 100 µs to ~100 s in quarter-decade buckets.
func NewMetrics() *Metrics {
	m := &Metrics{Latency: NewHistogram("sample_latency_us", ExpBuckets(100, math.Sqrt2, 40))}
	for name, c := range map[string]*Counter{
		"events":       &m.Events,
		"generated":    &m.Generated,
		"delivered":    &m.Delivered,
		"messages":     &m.DeliveredMsgs,
		"dropped":      &m.Dropped,
		"blocked_puts": &m.BlockedPuts,
		"batches":      &m.Batches,
		"forwards":     &m.Forwards,
		"retransmits":  &m.Retransmits,
		"crashes":      &m.Crashes,
		"lost":         &m.Lost,
	} {
		c.Name = name
	}
	return m
}

// Counters returns the registry's counters in a stable order.
func (m *Metrics) Counters() []*Counter {
	return []*Counter{
		&m.Events, &m.Generated, &m.Delivered, &m.DeliveredMsgs, &m.Dropped,
		&m.BlockedPuts, &m.Batches, &m.Forwards, &m.Retransmits, &m.Crashes,
		&m.Lost,
	}
}

// Series returns the sampler time series registered so far.
func (m *Metrics) Series() []*Series { return m.series }

// Reset zeroes all counters, the latency histogram, and sampler series
// (warmup removal); probe registrations survive.
func (m *Metrics) Reset() {
	for _, c := range m.Counters() {
		c.v.Store(0)
	}
	m.Latency.reset()
	for _, s := range m.series {
		s.mu.Lock()
		s.T = s.T[:0]
		s.V = s.V[:0]
		s.mu.Unlock()
	}
}

// Sampler periodically captures gauge-style probes as time series. It
// rides the simulator's own event calendar: each tick reads every probe
// and reschedules itself, so sampling is purely observational — it runs
// no model code and leaves model-event ordering untouched.
type Sampler struct {
	sim      *des.Simulator
	interval float64
	probes   []probe
	stopped  bool

	// expect is the tick-count capacity hint for new probe series
	// (SetExpectedTicks); tickFn is the reusable reschedule closure
	// (a method value would allocate at every tick).
	expect int
	tickFn func()
}

// SetExpectedTicks sizes the T/V slices of subsequently registered probes
// for n ticks, so a run of known length appends without growth. Callers
// derive n from the run geometry: (warmup+duration)/interval, plus slack.
func (s *Sampler) SetExpectedTicks(n int) {
	if n > 0 {
		s.expect = n
	}
}

type probe struct {
	series *Series
	read   func(tUS float64) float64
}

// NewSampler returns a sampler ticking every interval microseconds
// (interval must be positive).
func NewSampler(sim *des.Simulator, interval float64) *Sampler {
	if interval <= 0 {
		panic("obs: sampler interval must be positive")
	}
	return &Sampler{sim: sim, interval: interval}
}

// Probe registers a named probe; read is called at each tick with the
// current simulated time. The returned series fills as the run advances
// and is also appended to the registry m (when m is non-nil).
func (s *Sampler) Probe(m *Metrics, name string, read func(tUS float64) float64) *Series {
	ser := &Series{Name: name}
	if s.expect > 0 {
		ser.T = make([]float64, 0, s.expect)
		ser.V = make([]float64, 0, s.expect)
	}
	s.probes = append(s.probes, probe{series: ser, read: read})
	if m != nil {
		m.series = append(m.series, ser)
	}
	return ser
}

// Start schedules the first tick. Call once, after all probes are
// registered.
func (s *Sampler) Start() {
	s.tickFn = s.tick
	s.sim.Schedule(s.interval, s.tickFn)
}

// Stop halts sampling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	t := float64(s.sim.Now())
	for _, p := range s.probes {
		p.series.append(t, p.read(t))
	}
	s.sim.Schedule(s.interval, s.tickFn)
}
