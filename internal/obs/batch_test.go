package obs

import (
	"math"
	"testing"

	"rocc/internal/des"
)

// With staging enabled, steady-state Observe appends into the
// preallocated buffer and flushes in place — zero allocations per
// observation.
func TestStagedHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram("lat", ExpBuckets(100, math.Sqrt2, 40))
	h.EnableStaging(64)
	v := 100.0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 13.7
	})
	if allocs > 0 {
		t.Fatalf("staged Observe allocated %.2f objects per call", allocs)
	}
}

// Staging must be invisible in the reported statistics: a staged
// histogram and a plain one fed the same values agree on every accessor,
// whether or not a partial batch is still staged at read time.
func TestStagingDoesNotChangeResults(t *testing.T) {
	bounds := ExpBuckets(100, math.Sqrt2, 40)
	plain := NewHistogram("p", bounds)
	staged := NewHistogram("s", bounds)
	staged.EnableStaging(7) // deliberately misaligned with the value count

	v := 50.0
	for i := 0; i < 1000; i++ {
		plain.Observe(v)
		staged.Observe(v)
		v = v*1.01 + 3
	}
	if plain.Count() != staged.Count() {
		t.Fatalf("counts differ: %d vs %d", plain.Count(), staged.Count())
	}
	if plain.Mean() != staged.Mean() || plain.Min() != staged.Min() || plain.Max() != staged.Max() {
		t.Fatal("mean/min/max differ between plain and staged")
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if plain.Quantile(p) != staged.Quantile(p) {
			t.Fatalf("quantile %v differs: %v vs %v", p, plain.Quantile(p), staged.Quantile(p))
		}
	}

	// Reset discards staged-but-unflushed observations too.
	staged.Observe(1)
	staged.reset()
	if staged.Count() != 0 {
		t.Fatalf("reset left %d observations", staged.Count())
	}
}

// Atomic counters and gauges are the per-event write path when metrics
// are enabled; they must stay allocation-free now that the live exporter
// reads them concurrently.
func TestAtomicCounterGaugeDoNotAllocate(t *testing.T) {
	m := NewMetrics()
	var g Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		m.Events.Add(1)
		m.Generated.Add(1)
		g.Set(3.5)
		_ = m.Events.Value()
	})
	if allocs > 0 {
		t.Fatalf("counter/gauge hot path allocated %.2f objects per call", allocs)
	}
}

// Snapshot copies the histogram (it allocates), but taking one must not
// disturb the zero-alloc property of subsequent staged observations —
// the scrape path and the hot path share only the histogram mutex.
func TestObserveStaysAllocationFreeAfterSnapshot(t *testing.T) {
	h := NewHistogram("lat", ExpBuckets(100, math.Sqrt2, 40))
	h.EnableStaging(64)
	for i := 0; i < 200; i++ {
		h.Observe(float64(100 + i))
	}
	_ = h.Snapshot()
	v := 100.0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 13.7
	})
	if allocs > 0 {
		t.Fatalf("staged Observe allocated %.2f objects per call after Snapshot", allocs)
	}
}

// A sampler whose series were sized for the run must not allocate at
// steady-state ticks: T/V appends stay within capacity and the reschedule
// reuses one closure.
func TestSamplerTickDoesNotAllocate(t *testing.T) {
	sim := des.New()
	s := NewSampler(sim, 10)
	s.SetExpectedTicks(5000)
	m := NewMetrics()
	for i := 0; i < 4; i++ {
		s.Probe(m, "probe", func(tUS float64) float64 { return tUS })
	}
	s.Start()
	sim.Run(100) // warm the engine's event free list
	allocs := testing.AllocsPerRun(500, func() {
		sim.Step()
	})
	if allocs > 0 {
		t.Fatalf("sampler tick allocated %.2f objects per tick", allocs)
	}
}
