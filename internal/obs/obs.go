// Package obs is the in-simulator observability layer: sample-lifecycle
// tracing, metrics probes, and structured run logging for the ROCC
// simulation stack.
//
// The design goal is zero overhead when disabled. Every instrumentation
// point in internal/des, internal/resources, and internal/procs is a
// nil-guarded hook field — a single predictable branch on the hot path
// when no observer is attached (proven by the nil-observer allocation
// tests and the BENCH_baseline.json regression gate). When a Collector is
// attached via core.Model.EnableObservability, the simulation emits:
//
//   - Occupancy spans: every CPU scheduler dispatch and network transfer,
//     with owner class, simulated start time, and length — the same
//     records the AIX kernel tracer produced for the paper's Section 5
//     measurements. Exportable as internal/trace records (rocctrace
//     analyzes simulated runs exactly like measured traces) and as Chrome
//     trace-event JSON loadable in Perfetto or chrome://tracing.
//   - Sample-lifecycle events: generation, pipe put/block/drop/get, batch
//     collection, forwarding, retransmission, and delivery, each tagged
//     with the sample's (node, proc, seq) identity and simulated time, so
//     a sample's full path from application write to main-process receipt
//     is reconstructible.
//   - Metrics: a small registry of counters, gauges, and bucketed
//     histograms (with interpolated quantiles — the p50/p95/p99 delivery
//     delay behind the paper's latency figures), plus a periodic Sampler
//     that captures resource utilization, queue lengths, and pipe
//     occupancy as simulated-time series.
//
// The hook interfaces themselves live with the packages that call them
// (des.Observer, resources.PipeObserver, procs.Observer); Collector
// satisfies all of them structurally, so those packages stay free of any
// obs dependency.
package obs

import (
	"rocc/internal/procs"
	"rocc/internal/resources"
)

// FlowObserver consumes the per-sample lifecycle fan-out the provenance
// engine (internal/obs/prov) needs to fold each sample's path into
// per-stage dwell times. It is a subset-with-batches view of the
// procs.Observer and resources.PipeObserver hooks: batch slices are
// caller-owned and must not be retained.
type FlowObserver interface {
	// SampleGenerated: the sample exists; blocked reports a full-pipe stall.
	SampleGenerated(t float64, s resources.Sample, blocked bool)
	// PipePut: the sample was accepted into its pipe (admit time for
	// blocked writers).
	PipePut(t float64, s resources.Sample)
	// PipeGet: a daemon drained the sample from its pipe.
	PipeGet(t float64, s resources.Sample)
	// PipeDropped: the sample was discarded at a full pipe.
	PipeDropped(t float64, s resources.Sample)
	// BatchForwarded: a daemon handed a message carrying batch to the
	// network (hops==1: first forward after collection; >1: relay).
	BatchForwarded(node int, t float64, batch []resources.Sample, hops int)
	// BatchArrived: a relay daemon accepted a message from a child.
	BatchArrived(node int, t float64, batch []resources.Sample, hops int)
	// SampleDelivered: the sample reached the main process.
	SampleDelivered(t float64, s resources.Sample, latencyUS float64)
	// SampleLost: the sample left the system without reaching the main
	// process.
	SampleLost(node int, t float64, s resources.Sample, reason procs.LossReason)
	// ResetAccounting discards aggregates at the warmup boundary (records
	// of still-in-flight samples survive, mirroring the model's latency
	// accounting, which measures carryover samples from generation).
	ResetAccounting()
}

// Collector is the one-stop observer wired through a model: it fans each
// instrumentation callback into the optional trace sink, metrics
// registry, and per-sample flow observer. A nil Sink, Metrics, or Flow
// disables that third; the corresponding work is skipped.
//
// Collector satisfies des.Observer, resources.PipeObserver, and
// procs.Observer.
type Collector struct {
	Sink    *TraceSink
	Metrics *Metrics
	Flow    FlowObserver
}

// NewCollector returns a collector with the requested halves enabled.
func NewCollector(trace, metrics bool) *Collector {
	c := &Collector{}
	if trace {
		c.Sink = NewTraceSink()
	}
	if metrics {
		c.Metrics = NewMetrics()
	}
	return c
}

// ResetAccounting discards everything recorded so far: trace spans and
// events, metric counters, histograms, and sampler series. The model
// calls it at the end of the warmup period so observability data covers
// exactly the measured window, like every other accounting in the model.
func (c *Collector) ResetAccounting() {
	if c.Sink != nil {
		c.Sink.Reset()
	}
	if c.Metrics != nil {
		c.Metrics.Reset()
	}
	if c.Flow != nil {
		c.Flow.ResetAccounting()
	}
}

// EventDispatched implements des.Observer: one engine event executed.
func (c *Collector) EventDispatched(t float64, pending int) {
	if c.Metrics != nil {
		c.Metrics.Events.Add(1)
	}
}

// Occupancy records one completed resource-occupancy slice. kind selects
// the resource; unit identifies the CPU (node index, or the host CPU's
// index) and is 0 for the network.
func (c *Collector) Occupancy(kind OccKind, unit int, owner string, start, length float64) {
	if c.Sink != nil {
		c.Sink.addSpan(kind, unit, owner, start, length)
	}
}

// SampleGenerated implements procs.Observer: an application process wrote
// one instrumentation sample (blocked reports a full-pipe stall).
func (c *Collector) SampleGenerated(t float64, s resources.Sample, blocked bool) {
	if c.Metrics != nil {
		c.Metrics.Generated.Add(1)
		if blocked {
			c.Metrics.BlockedPuts.Add(1)
		}
	}
	if c.Flow != nil {
		c.Flow.SampleGenerated(t, s, blocked)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvSampleGenerated, TUS: t, Node: s.Node, Proc: s.Proc, Seq: s.Seq})
		if blocked {
			c.Sink.addEvent(Event{Kind: EvSampleBlocked, TUS: t, Node: s.Node, Proc: s.Proc, Seq: s.Seq})
		}
	}
}

// PipePut implements resources.PipeObserver: a sample entered a pipe.
func (c *Collector) PipePut(pipe int, t float64, s resources.Sample, depth int) {
	if c.Flow != nil {
		c.Flow.PipePut(t, s)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvPipePut, TUS: t, Unit: pipe, Node: s.Node, Proc: s.Proc, Seq: s.Seq, N: depth})
	}
}

// PipeBlocked implements resources.PipeObserver: a writer stalled on a
// full pipe (the §4.3.3 effect).
func (c *Collector) PipeBlocked(pipe int, t float64, s resources.Sample) {
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvPipeBlocked, TUS: t, Unit: pipe, Node: s.Node, Proc: s.Proc, Seq: s.Seq})
	}
}

// PipeDropped implements resources.PipeObserver: a sample was discarded at
// a full pipe; oldest distinguishes DropOldest evictions from arrivals.
func (c *Collector) PipeDropped(pipe int, t float64, s resources.Sample, oldest bool) {
	if c.Metrics != nil {
		c.Metrics.Dropped.Add(1)
	}
	if c.Flow != nil {
		c.Flow.PipeDropped(t, s)
	}
	if c.Sink != nil {
		n := 0
		if oldest {
			n = 1
		}
		c.Sink.addEvent(Event{Kind: EvPipeDropped, TUS: t, Unit: pipe, Node: s.Node, Proc: s.Proc, Seq: s.Seq, N: n})
	}
}

// PipeGet implements resources.PipeObserver: a daemon drained a sample.
func (c *Collector) PipeGet(pipe int, t float64, s resources.Sample, depth int) {
	if c.Flow != nil {
		c.Flow.PipeGet(t, s)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvPipeGet, TUS: t, Unit: pipe, Node: s.Node, Proc: s.Proc, Seq: s.Seq, N: depth})
	}
}

// BatchCollected implements procs.Observer: a daemon drained one batch
// from its local pipes.
func (c *Collector) BatchCollected(node int, t float64, samples int) {
	if c.Metrics != nil {
		c.Metrics.Batches.Add(1)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvBatchCollected, TUS: t, Node: node, N: samples})
	}
}

// MessageForwarded implements procs.Observer: a daemon put a message on
// the network toward its parent or the main process.
func (c *Collector) MessageForwarded(node int, t float64, batch []resources.Sample, hops int) {
	if c.Metrics != nil {
		c.Metrics.Forwards.Add(1)
	}
	if c.Flow != nil {
		c.Flow.BatchForwarded(node, t, batch, hops)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvMessageForwarded, TUS: t, Node: node, N: len(batch), Hops: hops})
		for _, s := range batch {
			c.Sink.addEvent(Event{Kind: EvSampleForwarded, TUS: t, Unit: node, Node: s.Node, Proc: s.Proc, Seq: s.Seq, Hops: hops})
		}
	}
}

// MessageReceived implements procs.Observer: a relay daemon accepted a
// message from a child for merging (tree forwarding).
func (c *Collector) MessageReceived(node int, t float64, batch []resources.Sample, hops int) {
	if c.Flow != nil {
		c.Flow.BatchArrived(node, t, batch, hops)
	}
	if c.Sink != nil {
		for _, s := range batch {
			c.Sink.addEvent(Event{Kind: EvSampleArrived, TUS: t, Unit: node, Node: s.Node, Proc: s.Proc, Seq: s.Seq, Hops: hops})
		}
	}
}

// MessageDelivered implements procs.Observer: the main Paradyn process
// received one forwarded message.
func (c *Collector) MessageDelivered(t float64, samples, hops int) {
	if c.Metrics != nil {
		c.Metrics.DeliveredMsgs.Add(1)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvMessageDelivered, TUS: t, N: samples, Hops: hops})
	}
}

// SampleDelivered implements procs.Observer: one sample completed its
// generation-to-receipt journey; latencyUS is the end-to-end delay.
func (c *Collector) SampleDelivered(t float64, s resources.Sample, latencyUS float64) {
	if c.Metrics != nil {
		c.Metrics.Delivered.Add(1)
		c.Metrics.Latency.Observe(latencyUS)
	}
	if c.Flow != nil {
		c.Flow.SampleDelivered(t, s, latencyUS)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvSampleDelivered, TUS: s.GenTime, DurUS: latencyUS, Node: s.Node, Proc: s.Proc, Seq: s.Seq})
	}
}

// SampleLost implements procs.Observer: one sample left the system
// without reaching the main process (thinning, crash, link loss, or an
// exhausted retransmission budget).
func (c *Collector) SampleLost(node int, t float64, s resources.Sample, reason procs.LossReason) {
	if c.Metrics != nil {
		c.Metrics.Lost.Add(1)
	}
	if c.Flow != nil {
		c.Flow.SampleLost(node, t, s, reason)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvSampleLost, TUS: t, Unit: node, Node: s.Node, Proc: s.Proc, Seq: s.Seq, N: int(reason)})
	}
}

// DaemonCrashed implements procs.Observer: a daemon went down, losing
// lostSamples of in-memory state.
func (c *Collector) DaemonCrashed(node int, t float64, lostSamples int) {
	if c.Metrics != nil {
		c.Metrics.Crashes.Add(1)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvDaemonCrash, TUS: t, Node: node, N: lostSamples})
	}
}

// DaemonRestored implements procs.Observer: a crashed daemon came back.
func (c *Collector) DaemonRestored(node int, t float64) {
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvDaemonRestore, TUS: t, Node: node})
	}
}

// MessageRetransmitted implements procs.Observer: a resilient uplink
// retried an unacknowledged message (attempt counts from 1).
func (c *Collector) MessageRetransmitted(node int, t float64, attempt int) {
	if c.Metrics != nil {
		c.Metrics.Retransmits.Add(1)
	}
	if c.Sink != nil {
		c.Sink.addEvent(Event{Kind: EvRetransmit, TUS: t, Node: node, N: attempt})
	}
}
