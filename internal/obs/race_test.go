package obs

import (
	"math"
	"sync"
	"testing"
)

// The live telemetry plane scrapes a run's metrics from an HTTP handler
// while the simulation goroutine is still mutating them. This test is
// the -race referee for that contract: one goroutine hammers counters,
// gauges, the staged histogram, and a series exactly the way a running
// model does, while readers concurrently take the snapshot-style reads
// the exporter uses (Value, Snapshot, Quantile, Last). It proves nothing
// about values — only that no access is an unsynchronized data race.
func TestConcurrentSnapshotWhileMutating(t *testing.T) {
	m := NewMetrics()
	m.Latency.EnableStaging(16)
	ser := &Series{Name: "pipe_depth"}
	m.series = append(m.series, ser)
	var g Gauge

	const iters = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "simulation" writer
		defer wg.Done()
		for i := 0; i < iters; i++ {
			m.Events.Add(1)
			m.Generated.Add(2)
			m.Latency.Observe(float64(100 + i%1000))
			g.Set(float64(i))
			ser.append(float64(i), float64(i%7))
			if i%1024 == 0 {
				m.Reset() // warmup removal can overlap a scrape too
			}
		}
	}()

	for r := 0; r < 2; r++ { // concurrent scrapers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				for _, c := range m.Counters() {
					_ = c.Value()
				}
				snap := m.Latency.Snapshot()
				if snap.Total > 0 && (math.IsNaN(snap.Sum) || snap.Max < snap.Min) {
					t.Error("inconsistent histogram snapshot")
					return
				}
				_ = m.Latency.Quantile(0.99)
				_ = g.Value()
				if _, _, ok := ser.Last(); ok {
					_ = ser.Len()
				}
			}
		}()
	}
	wg.Wait()

	if m.Events.Value() == 0 {
		t.Fatal("writer made no progress")
	}
}
