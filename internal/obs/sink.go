package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"rocc/internal/procs"
	"rocc/internal/trace"
)

// OccKind selects the resource an occupancy span occupied.
type OccKind int

const (
	// OccCPU is a CPU scheduler dispatch (one quantum-bounded slice).
	OccCPU OccKind = iota
	// OccNet is one network transfer.
	OccNet
)

// OccSpan is one resource-occupancy interval: the simulated counterpart of
// an AIX kernel-trace record, tagged with which CPU (unit) produced it.
type OccSpan struct {
	Kind    OccKind
	Unit    int // CPU index (node order, host CPU last); 0 for the network
	Owner   string
	StartUS float64
	DurUS   float64
}

// EventKind classifies a sample-lifecycle event.
type EventKind int

const (
	EvSampleGenerated EventKind = iota
	EvSampleBlocked
	EvPipePut
	EvPipeBlocked
	EvPipeDropped
	EvPipeGet
	EvBatchCollected
	EvMessageForwarded
	EvMessageDelivered
	EvSampleDelivered
	EvDaemonCrash
	EvDaemonRestore
	EvRetransmit
	// EvSampleForwarded/EvSampleArrived carry per-sample identity through
	// the forwarding path (Unit is the daemon's node) so a sample's hops
	// are reconstructible from the trace; EvSampleLost closes the path for
	// samples that never reach the main process (N is the
	// procs.LossReason).
	EvSampleForwarded
	EvSampleArrived
	EvSampleLost
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSampleGenerated:
		return "sample-generated"
	case EvSampleBlocked:
		return "sample-blocked"
	case EvPipePut:
		return "pipe-put"
	case EvPipeBlocked:
		return "pipe-blocked"
	case EvPipeDropped:
		return "pipe-dropped"
	case EvPipeGet:
		return "pipe-get"
	case EvBatchCollected:
		return "batch-collected"
	case EvMessageForwarded:
		return "message-forwarded"
	case EvMessageDelivered:
		return "message-delivered"
	case EvSampleDelivered:
		return "sample-delivered"
	case EvDaemonCrash:
		return "daemon-crash"
	case EvDaemonRestore:
		return "daemon-restore"
	case EvRetransmit:
		return "retransmit"
	case EvSampleForwarded:
		return "sample-forwarded"
	case EvSampleArrived:
		return "sample-arrived"
	case EvSampleLost:
		return "sample-lost"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one sample-lifecycle event. Field use varies by Kind:
//
//   - Node/Proc/Seq identify the sample for per-sample kinds (generated,
//     pipe put/block/drop/get, delivered) and the daemon's node for
//     daemon-scoped kinds (batch, forward, crash, restore, retransmit).
//   - Unit is the pipe ID for pipe events.
//   - DurUS is the end-to-end latency for EvSampleDelivered (whose TUS is
//     the sample's generation time, so the event renders as a span).
//   - N is a kind-specific count: pipe depth after put/get, 1 for a
//     DropOldest eviction (0 for an arrival drop), samples per batch or
//     message, samples lost in a crash, or the retransmit attempt number.
//   - Hops is the forwarding hop count (tree depth) for message kinds.
type Event struct {
	Kind  EventKind
	TUS   float64
	DurUS float64
	Unit  int
	Node  int
	Proc  int
	Seq   int
	N     int
	Hops  int
}

// TraceSink records occupancy spans and lifecycle events from one run.
// It is filled synchronously from the single simulation goroutine; no
// locking. Exporters read it after the run.
type TraceSink struct {
	spans  []OccSpan
	events []Event
}

// NewTraceSink returns an empty sink.
func NewTraceSink() *TraceSink { return &TraceSink{} }

func (s *TraceSink) addSpan(kind OccKind, unit int, owner string, start, length float64) {
	s.spans = append(s.spans, OccSpan{Kind: kind, Unit: unit, Owner: owner, StartUS: start, DurUS: length})
}

func (s *TraceSink) addEvent(e Event) { s.events = append(s.events, e) }

// Reset discards everything recorded so far (warmup removal).
func (s *TraceSink) Reset() {
	s.spans = s.spans[:0]
	s.events = s.events[:0]
}

// Spans returns the recorded occupancy spans (the sink's own slice; do not
// mutate).
func (s *TraceSink) Spans() []OccSpan { return s.spans }

// Events returns the recorded lifecycle events (the sink's own slice; do
// not mutate).
func (s *TraceSink) Events() []Event { return s.events }

// Len returns the total number of recorded spans and events.
func (s *TraceSink) Len() int { return len(s.spans) + len(s.events) }

// classPID maps a resource-accounting owner class to the Table 1 trace
// label and its PID base (one PID block per class; unit offsets within).
var classPID = map[string]struct {
	label string
	base  int
}{
	procs.OwnerApp:   {trace.ProcApplication, 100},
	procs.OwnerPd:    {trace.ProcPd, 200},
	procs.OwnerPvm:   {trace.ProcPvmd, 300},
	procs.OwnerOther: {trace.ProcOther, 400},
	procs.OwnerMain:  {trace.ProcParadyn, 500},
}

// TraceRecords exports the occupancy spans in internal/trace.Record form,
// sorted by start time, so rocctrace and the workload-characterization
// pipeline can analyze a simulated run exactly like a measured AIX trace.
// Unlike core.EnableTraceRecording (which mirrors the paper's one-node
// tracer), this covers every CPU in the model: per-class totals therefore
// match the run's aggregate Result accounting.
func (s *TraceSink) TraceRecords() []trace.Record {
	recs := make([]trace.Record, 0, len(s.spans))
	for _, sp := range s.spans {
		info, ok := classPID[sp.Owner]
		if !ok {
			info.label, info.base = sp.Owner, 900
		}
		res := trace.CPU
		if sp.Kind == OccNet {
			res = trace.Network
		}
		recs = append(recs, trace.Record{
			StartUS:    sp.StartUS,
			PID:        info.base + sp.Unit,
			Process:    info.label,
			Resource:   res,
			DurationUS: sp.DurUS,
		})
	}
	trace.SortByTime(recs)
	return recs
}

// Chrome trace-event JSON (the catapult format Perfetto and
// chrome://tracing load). Sim time is already in microseconds — exactly
// the format's ts unit — so timestamps pass through unscaled. The pid
// axis groups tracks: one pid per CPU, one for the network, one per
// node's sample lifecycle, one per pipe.
const (
	chromePIDNet = 999
	chromePIDCPU = 1000 // + CPU unit
	// ChromePIDSample is the pid base of the per-node sample-lifecycle
	// tracks (pid = ChromePIDSample + node). Exported so trace consumers
	// (roccviz -lat) can recover a delivered sample's node from its span.
	ChromePIDSample = 2000
	chromePIDPipe   = 4000 // + pipe ID
)

// chromeEvent is one trace-event object. Fields follow the Trace Event
// Format spec: ph "X" = complete (ts+dur), "i" = instant, "M" = metadata,
// "s"/"t"/"f" = flow start/step/end (ID binds the flow; BP "e" makes the
// flow end bind to the enclosing slice).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// flowCat is the category of sample-path flow events; flowID is the
// per-sample flow binding (unique because Seq never resets).
const flowCat = "sampleflow"

func flowID(node, proc, seq int) string {
	return fmt.Sprintf("n%d.p%d.s%d", node, proc, seq)
}

// ownerTID gives each owner class a stable thread row within a CPU track.
func ownerTID(owner string) int {
	switch owner {
	case procs.OwnerApp:
		return 1
	case procs.OwnerPd:
		return 2
	case procs.OwnerPvm:
		return 3
	case procs.OwnerOther:
		return 4
	case procs.OwnerMain:
		return 5
	}
	return 9
}

// WriteChrome exports the run as Chrome trace-event JSON: one "X"
// (complete) event per occupancy span and per delivered sample, one "i"
// (instant) event per lifecycle event, "M" process_name metadata so
// Perfetto labels the tracks, and "s"/"t"/"f" flow events linking each
// sample's spans across pipe→daemon→network→main so viewers render
// end-to-end arrows. Flow events are emitted only for samples whose
// generation is in the trace (warmup-truncated paths would otherwise
// produce flow steps with no start), and each flow ends at most once
// (first delivery or loss wins; injected duplicates add no second end).
func (s *TraceSink) WriteChrome(w io.Writer) error {
	events := make([]chromeEvent, 0, len(s.spans)+len(s.events)+16)
	named := map[int]string{}
	name := func(pid int, label string) {
		if _, ok := named[pid]; !ok {
			named[pid] = label
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": label},
			})
		}
	}
	gen := map[string]bool{}
	for _, e := range s.events {
		if e.Kind == EvSampleGenerated {
			gen[flowID(e.Node, e.Proc, e.Seq)] = true
		}
	}
	ended := map[string]bool{}
	for _, sp := range s.spans {
		pid, cat := chromePIDNet, "net"
		if sp.Kind == OccCPU {
			pid, cat = chromePIDCPU+sp.Unit, "cpu"
			name(pid, fmt.Sprintf("cpu %d", sp.Unit))
		} else {
			name(pid, "network")
		}
		events = append(events, chromeEvent{
			Name: sp.Owner, Cat: cat, Ph: "X",
			TS: sp.StartUS, Dur: sp.DurUS,
			PID: pid, TID: ownerTID(sp.Owner),
		})
	}
	for _, e := range s.events {
		switch e.Kind {
		case EvSampleGenerated:
			pid := ChromePIDSample + e.Node
			name(pid, fmt.Sprintf("node %d samples", e.Node))
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: "lifecycle", Ph: "i",
				TS: e.TUS, PID: pid, TID: 1, S: "t",
				Args: map[string]any{"n": e.N, "hops": e.Hops},
			})
			events = append(events, chromeEvent{
				Name: "sample path", Cat: flowCat, Ph: "s",
				TS: e.TUS, PID: pid, TID: 1,
				ID:   flowID(e.Node, e.Proc, e.Seq),
				Args: map[string]any{"node": e.Node, "proc": e.Proc, "seq": e.Seq},
			})
		case EvSampleForwarded, EvSampleArrived:
			id := flowID(e.Node, e.Proc, e.Seq)
			if !gen[id] {
				continue
			}
			pid := ChromePIDSample + e.Node
			name(pid, fmt.Sprintf("node %d samples", e.Node))
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: flowCat, Ph: "t",
				TS: e.TUS, PID: pid, TID: 1, ID: id,
				Args: map[string]any{"pd": e.Unit, "hops": e.Hops},
			})
		case EvSampleLost:
			pid := ChromePIDSample + e.Node
			name(pid, fmt.Sprintf("node %d samples", e.Node))
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: "lifecycle", Ph: "i",
				TS: e.TUS, PID: pid, TID: 1, S: "t",
				Args: map[string]any{"reason": procs.LossReason(e.N).String(), "pd": e.Unit},
			})
			id := flowID(e.Node, e.Proc, e.Seq)
			if gen[id] && !ended[id] {
				ended[id] = true
				events = append(events, chromeEvent{
					Name: "sample path", Cat: flowCat, Ph: "f",
					TS: e.TUS, PID: pid, TID: 1, ID: id, BP: "e",
				})
			}
		case EvSampleDelivered:
			pid := ChromePIDSample + e.Node
			name(pid, fmt.Sprintf("node %d samples", e.Node))
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("sample p%d #%d", e.Proc, e.Seq),
				Cat:  "sample", Ph: "X",
				TS: e.TUS, Dur: e.DurUS,
				PID: pid, TID: 1 + e.Proc,
				Args: map[string]any{"latency_us": e.DurUS},
			})
			id := flowID(e.Node, e.Proc, e.Seq)
			if gen[id] && !ended[id] {
				ended[id] = true
				events = append(events, chromeEvent{
					Name: "sample path", Cat: flowCat, Ph: "f",
					TS: e.TUS + e.DurUS, PID: pid, TID: 1 + e.Proc, ID: id, BP: "e",
				})
			}
		case EvPipePut, EvPipeBlocked, EvPipeDropped, EvPipeGet:
			pid := chromePIDPipe + e.Unit
			name(pid, fmt.Sprintf("pipe %d", e.Unit))
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: "pipe", Ph: "i",
				TS: e.TUS, PID: pid, TID: 1, S: "t",
				Args: map[string]any{"node": e.Node, "proc": e.Proc, "seq": e.Seq, "n": e.N},
			})
		default:
			pid := ChromePIDSample + e.Node
			name(pid, fmt.Sprintf("node %d samples", e.Node))
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: "lifecycle", Ph: "i",
				TS: e.TUS, PID: pid, TID: 1, S: "t",
				Args: map[string]any{"n": e.N, "hops": e.Hops},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ValidateChrome parses Chrome trace-event JSON produced by WriteChrome
// (or any conforming array-form trace) and returns the event count. It
// checks the structural invariants a viewer relies on: a non-empty array,
// a known phase on every event, non-negative timestamps and durations,
// and well-formed flows — every "s"/"t"/"f" carries an id, each (cat, id)
// starts exactly once, steps and ends have a matching start with the same
// cat, and no flow ends twice. Used by the CI trace-export smoke step and
// roccviz -check.
func ValidateChrome(r io.Reader) (int, error) {
	var events []chromeEvent
	dec := json.NewDecoder(r)
	if err := dec.Decode(&events); err != nil {
		return 0, fmt.Errorf("obs: not a trace-event JSON array: %w", err)
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("obs: trace contains no events")
	}
	type flowKey struct{ cat, id string }
	starts := map[flowKey]bool{}
	for i, e := range events {
		if e.Ph == "s" {
			if e.ID == "" {
				return 0, fmt.Errorf("obs: event %d: flow start without id", i)
			}
			k := flowKey{e.Cat, e.ID}
			if starts[k] {
				return 0, fmt.Errorf("obs: event %d: duplicate flow start %s/%s", i, e.Cat, e.ID)
			}
			starts[k] = true
		}
	}
	ended := map[flowKey]bool{}
	for i, e := range events {
		switch e.Ph {
		case "X", "i", "M", "B", "E", "C", "s":
		case "t", "f":
			if e.ID == "" {
				return 0, fmt.Errorf("obs: event %d: flow %q without id", i, e.Ph)
			}
			k := flowKey{e.Cat, e.ID}
			if !starts[k] {
				return 0, fmt.Errorf("obs: event %d: flow %q %s/%s has no matching start", i, e.Ph, e.Cat, e.ID)
			}
			if e.Ph == "f" {
				if ended[k] {
					return 0, fmt.Errorf("obs: event %d: flow %s/%s ends twice", i, e.Cat, e.ID)
				}
				ended[k] = true
			}
		default:
			return 0, fmt.Errorf("obs: event %d: unknown phase %q", i, e.Ph)
		}
		if e.Ph != "M" && e.Name == "" {
			return 0, fmt.Errorf("obs: event %d: missing name", i)
		}
		if e.TS < 0 || e.Dur < 0 {
			return 0, fmt.Errorf("obs: event %d: negative time", i)
		}
	}
	return len(events), nil
}
